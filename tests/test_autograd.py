"""Gradient correctness of the autograd engine (finite differences +
property-based checks) and graph-mechanics behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, concatenate, no_grad, stack, tensor, where
from repro.tensor.autograd import unbroadcast

from helpers import check_gradients


def arrays(shape):
    return hnp.arrays(
        np.float64, shape,
        elements=st.floats(-2.0, 2.0, allow_nan=False, width=32),
    )


class TestElementwise:
    def test_add_gradients(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(3, 4))
        check_gradients(lambda x, y: x + y, [a, b])

    def test_add_broadcast_gradients(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        check_gradients(lambda x, y: x + y, [a, b])

    def test_mul_gradients(self, rng):
        a, b = rng.normal(size=(2, 5)), rng.normal(size=(2, 5))
        check_gradients(lambda x, y: x * y, [a, b])

    def test_sub_and_neg(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        check_gradients(lambda x, y: x - y, [a, b])
        check_gradients(lambda x: -x, [a])

    def test_div_gradients(self, rng):
        a = rng.normal(size=(3, 3))
        b = rng.uniform(0.5, 2.0, size=(3, 3))
        check_gradients(lambda x, y: x / y, [a, b])

    def test_pow_gradients(self, rng):
        a = rng.uniform(0.5, 2.0, size=(5,))
        check_gradients(lambda x: x**3, [a])

    def test_scalar_coercion(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        out = (2.0 * t + 1.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0])


class TestMatmul:
    def test_2d(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_batched(self, rng):
        a, b = rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 5))
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_broadcast_batched(self, rng):
        a, b = rng.normal(size=(2, 3, 4)), rng.normal(size=(4, 5))
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_vector_matrix(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4, 3))
        check_gradients(lambda x, y: x @ y, [a, b])

    def test_matrix_vector(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4,))
        check_gradients(lambda x, y: x @ y, [a, b])


class TestShapes:
    def test_reshape(self, rng):
        a = rng.normal(size=(2, 6))
        check_gradients(lambda x: x.reshape(3, 4), [a])

    def test_transpose(self, rng):
        a = rng.normal(size=(2, 3, 4))
        check_gradients(lambda x: x.transpose(2, 0, 1), [a])

    def test_swapaxes(self, rng):
        a = rng.normal(size=(2, 3, 4))
        check_gradients(lambda x: x.swapaxes(-1, -2), [a])

    def test_getitem(self, rng):
        a = rng.normal(size=(4, 5))
        check_gradients(lambda x: x[1:3, ::2], [a])

    def test_concatenate(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        check_gradients(lambda x, y: concatenate([x, y], axis=1), [a, b])

    def test_stack(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        check_gradients(lambda x, y: stack([x, y], axis=0), [a, b])


class TestReductionsAndNonlinearities:
    def test_sum_axis(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda x: x.sum(axis=1), [a])
        check_gradients(lambda x: x.sum(axis=0, keepdims=True), [a])

    def test_mean(self, rng):
        a = rng.normal(size=(3, 4))
        check_gradients(lambda x: x.mean(axis=-1), [a])

    def test_exp_log_sqrt_tanh(self, rng):
        a = rng.uniform(0.5, 2.0, size=(6,))
        check_gradients(lambda x: x.exp(), [a])
        check_gradients(lambda x: x.log(), [a])
        check_gradients(lambda x: x.sqrt(), [a])
        check_gradients(lambda x: x.tanh(), [a])

    def test_relu_gelu(self, rng):
        a = rng.normal(size=(8,)) + 0.1  # keep away from the ReLU kink
        check_gradients(lambda x: x.relu(), [a])
        check_gradients(lambda x: x.gelu(), [a])

    def test_where(self, rng):
        a, b = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
        cond = rng.random((4, 4)) > 0.5
        check_gradients(lambda x, y: where(cond, x, y), [a, b])


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = tensor([2.0], requires_grad=True)
        y = x * x + x  # x used twice in the product, once in the sum
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_no_grad_blocks_taping(self):
        x = tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_requires_scalar_without_seed(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_seed_gradient(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_backward_seed_shape_validated(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 3).backward(np.array([1.0]))

    def test_deep_chain_no_recursion_error(self):
        x = tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_detach_cuts_graph(self):
        x = tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_grad_not_required_stays_none(self):
        x = tensor([1.0])
        y = tensor([2.0], requires_grad=True)
        (x * y).sum().backward()
        assert x.grad is None
        np.testing.assert_allclose(y.grad, [1.0])

    def test_repeated_backward_accumulates_in_leaf(self):
        x = tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])


class TestUnbroadcast:
    @given(arrays((3, 4)))
    @settings(max_examples=25, deadline=None)
    def test_sum_grad_matches_shape(self, data):
        grad = np.asarray(data, dtype=np.float32)
        reduced = unbroadcast(grad, (4,))
        assert reduced.shape == (4,)
        np.testing.assert_allclose(reduced, grad.sum(axis=0), rtol=1e-5, atol=1e-5)

    def test_keepdim_axis(self):
        grad = np.ones((3, 4), dtype=np.float32)
        reduced = unbroadcast(grad, (3, 1))
        np.testing.assert_allclose(reduced, np.full((3, 1), 4.0))

    def test_identity(self):
        grad = np.ones((2, 2), dtype=np.float32)
        assert unbroadcast(grad, (2, 2)) is grad


class TestHypothesisGradients:
    """Property-based gradcheck: linearity of backward and agreement
    with finite differences on random shapes."""

    @given(arrays((2, 3)), arrays((2, 3)))
    @settings(max_examples=20, deadline=None)
    def test_add_backward_is_identity(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta + tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones_like(a), atol=1e-6)
        np.testing.assert_allclose(tb.grad, np.ones_like(b), atol=1e-6)

    @given(arrays((3, 3)))
    @settings(max_examples=20, deadline=None)
    def test_mul_by_self_grad(self, a):
        t = Tensor(a, requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * t.data, rtol=1e-4, atol=1e-4)

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shapes(self, m, k, n):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(m, k)), requires_grad=True)
        b = Tensor(rng.normal(size=(k, n)), requires_grad=True)
        out = a @ b
        assert out.shape == (m, n)
        out.sum().backward()
        assert a.grad.shape == (m, k)
        assert b.grad.shape == (k, n)
