"""LLM client and aggregator behaviour (the Algorithm 1 pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, OptimConfig, WallTimeConfig
from repro.data import CachedTokenStream, SyntheticC4, partition_stream
from repro.fed import (
    Aggregator,
    AvailabilityModel,
    CheckpointManager,
    ClipUpdate,
    FedAvg,
    LLMClient,
    UniformSampler,
)
from repro.fed.types import RoundInfo
from repro.net.walltime import WallTimeModel
from repro.nn import DecoderLM
from repro.optim import ConstantLR
from repro.parallel import H100, NodeSpec, SiloSpec
from repro.utils import state_to_vector, tree_norm


CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32, seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64, batch_size=4,
                    weight_decay=0.0)


def make_stream(shard=0, batch=4, seed=0):
    c4 = SyntheticC4(num_shards=4, vocab=CFG.vocab_size, seed=1)
    return CachedTokenStream(c4.shard(shard), batch_size=batch, seq_len=CFG.seq_len,
                             cache_tokens=2048, seed=seed)


def make_client(client_id="c0", **kwargs):
    defaults = dict(
        client_id=client_id, model_config=CFG, streams=make_stream(),
        optim=OPTIM, schedule=ConstantLR(3e-3),
    )
    defaults.update(kwargs)
    return LLMClient(**defaults)


def val_stream():
    c4 = SyntheticC4(num_shards=4, vocab=CFG.vocab_size, seed=1)
    return CachedTokenStream(c4.validation(), batch_size=4, seq_len=CFG.seq_len,
                             cache_tokens=2048, seed=99)


class TestLLMClient:
    def test_update_delta_sign(self):
        """Δ = θ_global − θ_local: applying FedAvg(lr=1) to a single
        client's delta must recover that client's trained weights."""
        client = make_client()
        global_state = DecoderLM(CFG, seed=7).state_dict()
        info = RoundInfo(round_idx=0, local_steps=3, global_step_base=0)
        update = client.train(global_state, info)
        recovered = FedAvg(lr=1.0).step(global_state, update.delta)
        np.testing.assert_allclose(
            state_to_vector(recovered),
            state_to_vector(client.model.state_dict()),
            rtol=1e-4, atol=1e-6,
        )

    def test_update_metadata(self):
        client = make_client()
        info = RoundInfo(0, 3, 0)
        update = client.train(DecoderLM(CFG, seed=0).state_dict(), info)
        assert update.num_steps == 3
        assert update.num_tokens == 3 * 4 * CFG.seq_len
        assert "train_loss_mean" in update.metrics
        assert np.isfinite(update.metrics["train_loss_mean"])

    def test_stateless_resets_momenta(self):
        client = make_client(stateless=True)
        global_state = DecoderLM(CFG, seed=0).state_dict()
        client.train(global_state, RoundInfo(0, 2, 0))
        t_after_first = client._optimizer.t
        client.train(global_state, RoundInfo(1, 2, 2))
        # Stateless: optimizer step counter restarted for round 2.
        assert client._optimizer.t == t_after_first

    def test_stateful_keeps_momenta(self):
        client = make_client(stateless=False)
        global_state = DecoderLM(CFG, seed=0).state_dict()
        client.train(global_state, RoundInfo(0, 2, 0))
        client.train(global_state, RoundInfo(1, 2, 2))
        assert client._optimizer.t == 4

    def test_deterministic_given_seeds(self):
        a = make_client()
        b = make_client()
        global_state = DecoderLM(CFG, seed=0).state_dict()
        ua = a.train(global_state, RoundInfo(0, 2, 0))
        ub = b.train(global_state, RoundInfo(0, 2, 0))
        np.testing.assert_allclose(
            state_to_vector(ua.delta), state_to_vector(ub.delta), atol=1e-6
        )

    def test_post_processing_applied(self):
        client = make_client(post_process=ClipUpdate(max_norm=1e-6))
        update = client.train(DecoderLM(CFG, seed=0).state_dict(), RoundInfo(0, 2, 0))
        assert tree_norm(update.delta) <= 1e-6 * 1.01

    def test_schedule_followed_across_rounds(self):
        from repro.optim import WarmupCosine

        schedule = WarmupCosine(1e-2, warmup_steps=4, total_steps=16)
        client = make_client(schedule=schedule)
        global_state = DecoderLM(CFG, seed=0).state_dict()
        update = client.train(global_state, RoundInfo(0, 4, 0))
        assert update.metrics["lr_final"] == pytest.approx(schedule(3))
        update = client.train(global_state, RoundInfo(1, 4, 4))
        assert update.metrics["lr_final"] == pytest.approx(schedule(7))

    def test_no_stream_rejected(self):
        with pytest.raises(ValueError):
            make_client(streams=[])

    def test_default_plan_single_worker(self):
        plan = make_client().execution_plan()
        assert plan.strategy == "single_gpu"
        assert plan.n_workers == 1

    def test_silo_plan_resolved(self):
        client = make_client(silo=SiloSpec.multi_gpu(2))
        assert client.execution_plan().strategy == "ddp"

    def test_tokens_accumulate(self):
        client = make_client()
        global_state = DecoderLM(CFG, seed=0).state_dict()
        client.train(global_state, RoundInfo(0, 2, 0))
        client.train(global_state, RoundInfo(1, 2, 2))
        assert client.tokens_processed == 2 * 2 * 4 * CFG.seq_len
        assert client.rounds_participated == 2


class TestSubFederation:
    def test_sub_federated_client_averages_nodes(self):
        c4 = SyntheticC4(num_shards=1, vocab=CFG.vocab_size, seed=1)
        streams = partition_stream(c4.shard(0), 2, batch_size=4,
                                   seq_len=CFG.seq_len, seed=0)
        silo = SiloSpec("campus", (NodeSpec((H100,)), NodeSpec((H100,))),
                        inter_bw_gbps=1.0)
        client = LLMClient("subfed", CFG, streams, OPTIM, ConstantLR(3e-3), silo=silo)
        assert client.execution_plan().strategy == "sub_federation"
        update = client.train(DecoderLM(CFG, seed=0).state_dict(), RoundInfo(0, 2, 0))
        assert update.metrics["sub_nodes"] == 2.0
        assert np.isfinite(state_to_vector(update.delta)).all()


class TestAggregator:
    def make_aggregator(self, n_clients=2, **kwargs):
        clients = {
            f"c{i}": make_client(f"c{i}", streams=make_stream(shard=i, seed=i))
            for i in range(n_clients)
        }
        defaults = dict(model_config=CFG, clients=clients, val_stream=val_stream())
        defaults.update(kwargs)
        return Aggregator(**defaults)

    def test_single_client_round_adopts_client_model(self):
        """With one client and FedAvg(lr=1) the new global model IS
        the client's trained model — federated == local training."""
        agg = self.make_aggregator(n_clients=1)
        client = agg.clients["c0"]
        initial = {k: v.copy() for k, v in agg.global_state.items()}
        agg.run_round(0, local_steps=3)
        np.testing.assert_allclose(
            state_to_vector(agg.global_state),
            state_to_vector(client.model.state_dict()),
            rtol=1e-4, atol=1e-6,
        )
        assert not np.allclose(state_to_vector(agg.global_state),
                               state_to_vector(initial))

    def test_two_identical_clients_equal_one(self):
        """Two clients with identical data/seed produce identical
        deltas; their average equals either one."""
        stream_kwargs = dict(shard=0, seed=5)
        clients = {
            "a": make_client("a", streams=make_stream(**stream_kwargs)),
            "b": make_client("b", streams=make_stream(**stream_kwargs)),
        }
        agg = Aggregator(CFG, clients, val_stream=val_stream())
        solo = self.make_aggregator(n_clients=1)
        solo.clients["c0"].streams = [make_stream(**stream_kwargs)]
        agg.run_round(0, 2)
        solo.run_round(0, 2)
        np.testing.assert_allclose(
            state_to_vector(agg.global_state),
            state_to_vector(solo.global_state), rtol=1e-4, atol=1e-6,
        )

    def test_history_and_comm_accounting(self):
        agg = self.make_aggregator()
        record = agg.run_round(0, 2)
        assert record.comm_bytes_down > 0
        assert record.comm_bytes_up > 0
        assert record.clients == ["c0", "c1"]
        assert len(agg.history) == 1
        assert np.isfinite(record.val_perplexity)

    def test_run_multiple_rounds_improves(self):
        agg = self.make_aggregator()
        history = agg.run(rounds=4, local_steps=8)
        assert history.val_perplexities[-1] < history.val_perplexities[0]

    def test_target_perplexity_stops_early(self):
        agg = self.make_aggregator()
        history = agg.run(rounds=50, local_steps=8, target_perplexity=1e9)
        assert len(history) == 1

    def test_partial_participation_sampler(self):
        agg = self.make_aggregator(n_clients=4, sampler=UniformSampler(2, seed=0))
        record = agg.run_round(0, 2)
        assert len(record.clients) == 2

    def test_availability_filters_population(self):
        agg = self.make_aggregator(
            n_clients=4, availability=AvailabilityModel(uptime=0.5, seed=3)
        )
        sizes = [len(agg.run_round(r, 1).clients) for r in range(5)]
        assert min(sizes) >= 1
        assert any(s < 4 for s in sizes)

    def test_checkpointing_each_round(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=10)
        agg = self.make_aggregator(checkpointer=manager)
        agg.run(rounds=3, local_steps=1)
        assert manager.list_checkpoints() == [0, 1, 2]
        _, state, meta = manager.load()
        assert set(state) == set(agg.global_state)
        assert meta["clients"] == ["c0", "c1"]

    def test_resume_from_checkpoint_state(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        agg = self.make_aggregator(checkpointer=manager)
        agg.run(rounds=2, local_steps=1)
        _, state, _ = manager.load()
        resumed = self.make_aggregator()
        resumed.global_state = state
        np.testing.assert_allclose(
            state_to_vector(resumed.global_state),
            state_to_vector(agg.global_state),
        )

    def test_walltime_accrues(self):
        wt = WallTimeModel(WallTimeConfig(throughput=2.0, bandwidth_mbps=1250.0,
                                          model_mb=0.1))
        agg = self.make_aggregator(walltime=wt, comm_topology="rar")
        agg.run(rounds=2, local_steps=4)
        assert agg.simulated_wall_time_s == pytest.approx(2 * (4 / 2.0 + wt.comm_s("rar", 2)))

    def test_weighted_aggregation(self):
        clients = {
            "small": make_client("small", streams=make_stream(shard=0, batch=4, seed=0)),
            "large": make_client("large", streams=make_stream(shard=1, batch=8, seed=1)),
        }
        agg = Aggregator(CFG, clients, val_stream=val_stream(), weighted=True)
        record = agg.run_round(0, 2)
        assert np.isfinite(record.val_perplexity)

    def test_empty_federation_rejected(self):
        with pytest.raises(ValueError):
            Aggregator(CFG, {})

    def test_invalid_rounds(self):
        agg = self.make_aggregator()
        with pytest.raises(ValueError):
            agg.run(rounds=0, local_steps=1)


class TestClientCheckpointing:
    def test_client_level_checkpointer_retired(self):
        """The weights-only per-client checkpointer is gone: RunState
        (PR 5) snapshots the entire federation crash-consistently, and
        the dual path could silently resurrect stale weights on
        resume.  Engine-level checkpointing (``Aggregator`` /
        ``RunStateCheckpointer``) is the one remaining path."""
        with pytest.raises(TypeError):
            make_client(checkpointer=CheckpointManager("/tmp/unused"))

    def test_client_state_survives_roundtrip(self):
        """What RunState persists per client — counters, stream RNG
        position — restores a twin to the same durable state (the
        model workspace is overwritten by every broadcast)."""
        client = make_client()
        global_state = DecoderLM(CFG, seed=0).state_dict()
        client.train(global_state, RoundInfo(0, 3, 0))
        twin = make_client()
        twin.load_state_dict(client.state_dict())
        assert twin.tokens_processed == client.tokens_processed
        assert twin.rounds_participated == client.rounds_participated
        ua = client.train(global_state, RoundInfo(1, 2, 3))
        ub = twin.train(global_state, RoundInfo(1, 2, 3))
        np.testing.assert_allclose(
            state_to_vector(ua.delta), state_to_vector(ub.delta), atol=1e-6
        )
