"""Round engines: async FedBuff semantics, sync equivalence anchors,
determinism regressions, and the per-client wall-time heterogeneity
they run on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser
from repro.config import FedConfig, ModelConfig, OptimConfig, WallTimeConfig
from repro.fed import (
    AsyncAggregator,
    ClientFailure,
    FailureModel,
    FaultPolicy,
    Photon,
    PolynomialStaleness,
    SyncAggregator,
)
from repro.net import WallTimeModel

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32, seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64, batch_size=2,
                    weight_decay=0.0)
WALLTIME = WallTimeConfig(throughput=2.0, bandwidth_mbps=312.5, model_mb=0.05)


def make_photon(mode="sync", *, population=3, rounds=3, local_steps=2,
                staleness_alpha=0.0, **kwargs):
    fed = FedConfig(population=population, clients_per_round=population,
                    local_steps=local_steps, rounds=rounds, mode=mode,
                    staleness_alpha=staleness_alpha if mode == "async" else None)
    return Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2, **kwargs)


def trace(history):
    return (history.val_perplexities, history.train_losses,
            [r.pseudo_grad_norm for r in history])


class TestPolynomialStaleness:
    def test_fresh_updates_unweighted(self):
        assert PolynomialStaleness(0.7)(0) == 1.0

    def test_polynomial_decay(self):
        w = PolynomialStaleness(0.5)
        np.testing.assert_allclose(w(1), 1.0 / np.sqrt(2.0))
        np.testing.assert_allclose(w(3), 0.5)
        assert w(5) < w(2) < w(1)

    def test_alpha_zero_is_identity(self):
        w = PolynomialStaleness(0.0)
        assert [w(s) for s in range(5)] == [1.0] * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            PolynomialStaleness(-0.1)
        with pytest.raises(ValueError):
            PolynomialStaleness(0.5)(-1)


class TestWallTimeHeterogeneity:
    def test_homogeneous_reduces_to_analytic(self):
        wt = WallTimeModel(WALLTIME)
        cohort = wt.cohort_timing("rar", ["a", "b", "c"], 8)
        analytic = wt.round_timing("rar", 3, 8)
        assert cohort.compute_s == analytic.compute_s
        assert cohort.comm_s == analytic.comm_s

    def test_straggler_paces_the_cohort(self):
        wt = WallTimeModel(WALLTIME, client_compute_factors={"slow": 4.0})
        cohort = wt.cohort_timing("rar", ["fast", "slow"], 8)
        assert cohort.compute_s == 4.0 * wt.local_compute_s(8)
        # The straggler only pays its own price on the async clock.
        assert wt.client_timing("fast", 8).compute_s == wt.local_compute_s(8)
        assert wt.client_timing("slow", 8).compute_s == 4.0 * wt.local_compute_s(8)

    def test_slow_link_scales_client_comm(self):
        wt = WallTimeModel(WALLTIME, client_bandwidth_factors={"far": 2.0})
        assert wt.client_timing("far", 1).comm_s == 2.0 * wt.client_timing("near", 1).comm_s

    def test_heterogeneous_factory_bounds_and_seed(self):
        ids = [f"c{i}" for i in range(16)]
        wt = WallTimeModel.heterogeneous(WALLTIME, ids, compute_spread=4.0,
                                         bandwidth_spread=2.0, seed=5)
        assert all(1.0 <= wt.compute_factor(c) <= 4.0 for c in ids)
        assert all(1.0 <= wt.bandwidth_factor(c) <= 2.0 for c in ids)
        again = WallTimeModel.heterogeneous(WALLTIME, ids, compute_spread=4.0,
                                            bandwidth_spread=2.0, seed=5)
        assert wt.client_compute_factors == again.client_compute_factors

    def test_validation(self):
        with pytest.raises(ValueError):
            WallTimeModel(WALLTIME, client_compute_factors={"c": 0.0})
        with pytest.raises(ValueError):
            WallTimeModel.heterogeneous(WALLTIME, ["a"], compute_spread=0.5)
        with pytest.raises(ValueError):
            WallTimeModel(WALLTIME).cohort_timing("rar", [], 4)


class TestAsyncEngine:
    def test_photon_builds_async_engine(self):
        photon = make_photon("async")
        assert isinstance(photon.aggregator, AsyncAggregator)
        assert not isinstance(photon.aggregator, SyncAggregator)

    def test_full_buffer_zero_staleness_matches_sync(self):
        """The acceptance anchor: buffer == cohort, no staleness
        penalty, equipollent clock -> bit-identical convergence."""
        sync = make_photon("sync")
        sync_history = sync.train()
        asyn = make_photon("async")
        async_history = asyn.train()
        assert trace(sync_history) == trace(async_history)
        # Byte accounting windows line up with the sync rounds too:
        # each flush owns the dispatches that seeded it.
        assert [(r.comm_bytes_up, r.comm_bytes_down) for r in sync_history] == \
               [(r.comm_bytes_up, r.comm_bytes_down) for r in async_history]

    def test_matches_sync_under_homogeneous_walltime(self):
        sync = make_photon("sync", walltime_config=WALLTIME)
        asyn = make_photon("async", walltime_config=WALLTIME)
        assert trace(sync.train()) == trace(asyn.train())

    def test_smaller_buffer_updates_more_often(self):
        fed = FedConfig(population=3, clients_per_round=3, local_steps=2,
                        rounds=4, mode="async", buffer_size=1)
        # Distinct per-client speeds -> distinct arrival times -> one
        # update per arrival; training still moves.
        eager = Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                       walltime_config=WALLTIME, client_speed_spread=4.0)
        history = eager.train()
        assert all(len(r.clients) == 1 for r in history)
        assert history.val_perplexities[-1] < history.val_perplexities[0]

    def test_stragglers_produce_staleness_and_save_walltime(self):
        sync = make_photon("sync", walltime_config=WALLTIME,
                           client_speed_spread=4.0)
        sync.train()
        asyn = make_photon("async", walltime_config=WALLTIME,
                           client_speed_spread=4.0, staleness_alpha=0.5)
        async_history = asyn.train()
        assert asyn.aggregator.simulated_wall_time_s < sync.aggregator.simulated_wall_time_s
        staleness = [r.client_metrics["staleness"] for r in async_history]
        assert max(staleness) > 0.0
        weights = [r.client_metrics["staleness_weight"] for r in async_history]
        assert all(0.0 < w <= 1.0 for w in weights)

    def test_no_walltime_model_reports_no_fake_seconds(self):
        photon = make_photon("async")
        history = photon.train()
        assert all(r.wall_time_s == 0.0 for r in history)
        assert photon.aggregator.simulated_wall_time_s == 0.0

    def test_wall_time_recorded_per_flush(self):
        photon = make_photon("async", walltime_config=WALLTIME)
        history = photon.train()
        assert all(r.wall_time_s > 0 for r in history)
        np.testing.assert_allclose(
            photon.aggregator.simulated_wall_time_s,
            sum(r.wall_time_s for r in history),
        )

    def test_staleness_discount_is_absolute(self):
        """A lone stale delta must shrink by w(s) — the discount is
        not renormalized away by the buffer mean."""
        def run(alpha):
            fed = FedConfig(population=3, clients_per_round=3, local_steps=2,
                            rounds=6, mode="async", buffer_size=1,
                            staleness_alpha=alpha)
            photon = Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                            walltime_config=WALLTIME, client_speed_spread=4.0)
            return photon.train()

        flat = run(0.0)
        harsh = run(5.0)
        assert trace(flat) != trace(harsh)
        # Runs are identical until the first stale flush, where the
        # single-delta pseudo-gradient scales by exactly 1/(1+s)^5.
        idx, s = next((i, r.client_metrics["staleness"])
                      for i, r in enumerate(harsh.records)
                      if r.client_metrics["staleness"] > 0)
        np.testing.assert_allclose(
            harsh.records[idx].pseudo_grad_norm,
            flat.records[idx].pseudo_grad_norm / (1.0 + s) ** 5,
            rtol=1e-5,
        )

    def test_strict_fault_policy_aborts(self):
        photon = make_photon("async", rounds=2)
        photon.aggregator.failure_model = FailureModel(scripted={(0, "client0")})
        photon.aggregator.fault_policy = FaultPolicy(mode="strict")
        with pytest.raises(ClientFailure):
            photon.train()

    def test_failures_degrade_to_partial_participation(self):
        photon = make_photon("async", rounds=2)
        photon.aggregator.failure_model = FailureModel(scripted={(0, "client1")})
        photon.aggregator.fault_policy = FaultPolicy(mode="partial")
        history = photon.train()
        assert "client1" in history.records[0].failed_clients
        assert len(history) == 2

    def test_comm_bytes_attributed_to_flushes(self):
        photon = make_photon("async")
        history = photon.train()
        agg = photon.aggregator
        assert all(r.comm_bytes_up > 0 and r.comm_bytes_down > 0 for r in history)
        # Every byte up to the last flush mark lands in exactly one
        # record; only post-final-flush in-flight dispatches remain.
        assert sum(r.comm_bytes_up for r in history) == agg._bytes_up_mark
        assert sum(r.comm_bytes_down for r in history) == agg._bytes_down_mark

    def test_dispatch_defers_unavailable_clients(self):
        photon = make_photon("async", rounds=1)
        agg = photon.aggregator

        class OnlyLastReachable:
            def available(self, population, round_idx):
                return [population[-1]]

        agg.availability = OnlyLastReachable()
        agg._ensure_started(2)
        # Unreachable clients stay idle (effective concurrency drops)
        # instead of being force-dispatched.
        assert list(agg._inflight) == ["client2"]
        assert list(agg._idle) == ["client0", "client1"]

    def test_buffer_size_honored_on_unit_clock(self):
        """Without a wall-time model all completions tie; arrivals must
        still be drained one at a time so buffer_size binds."""
        fed = FedConfig(population=3, clients_per_round=3, local_steps=2,
                        rounds=4, mode="async", buffer_size=2,
                        staleness_alpha=0.0)
        photon = Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2)
        history = photon.train()
        assert all(len(r.clients) == 2 for r in history)
        # The surplus arrival of each tied batch aggregates one server
        # version late.
        assert any(r.client_metrics["staleness"] > 0 for r in history)

    def test_uptime_run_still_trains(self):
        photon = make_photon("async", uptime=0.5, rounds=2)
        history = photon.train()
        assert len(history) == 2
        assert np.isfinite(history.val_perplexities).all()

    # Tier-2: uptime paths stay covered in tier-1 by the cheaper
    # test_uptime_run_still_trains.
    @pytest.mark.slow
    def test_deferred_concurrency_recovers(self):
        """Unavailable clients shrink the in-flight pool only until the
        next availability draw — deferred slots are re-offered."""
        fed = FedConfig(population=6, clients_per_round=6, local_steps=2,
                        rounds=8, mode="async", staleness_alpha=0.0)
        photon = Photon(CFG, fed, OPTIM, num_shards=6, val_batches=2,
                        uptime=0.4)
        agg = photon.aggregator
        counts = []
        for t in range(8):
            agg.run_round(t, 2)
            counts.append(len(agg._inflight))
        assert min(counts) >= 1  # the floor keeps the federation alive
        assert max(counts) >= 3  # ...and concurrency climbs back up

    def test_run_rounds_equals_server_updates(self):
        """A tied batch must not over-apply: run(R) means exactly R
        ServerOpt steps and R history records, even with buffer_size=1
        on the unit clock (where one batch holds many arrivals)."""
        fed = FedConfig(population=3, clients_per_round=3, local_steps=2,
                        rounds=4, mode="async", buffer_size=1,
                        staleness_alpha=0.0)
        photon = Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2)
        history = photon.train()
        assert len(history) == 4
        assert photon.aggregator.version == 4
        assert [r.round_idx for r in history] == [0, 1, 2, 3]

    def test_local_steps_cannot_change_mid_run(self):
        photon = make_photon("async", rounds=2)
        photon.aggregator.run_round(0, 2)
        with pytest.raises(ValueError):
            photon.aggregator.run_round(1, 5)

    def test_async_config_validation(self):
        with pytest.raises(ValueError):
            FedConfig(mode="banana")
        with pytest.raises(ValueError):
            FedConfig(mode="sync", buffer_size=2)  # async-only knob
        with pytest.raises(ValueError):
            FedConfig(mode="sync", staleness_alpha=0.5)  # async-only knob
        with pytest.raises(ValueError):
            FedConfig(mode="async", buffer_size=0)
        with pytest.raises(ValueError):
            FedConfig(mode="async", staleness_alpha=-0.5)


class TestDeterminism:
    """Identical seeds must give bit-identical histories — the
    regression that guards every refactor of the round engines."""

    def test_sync_bit_identical_reruns(self):
        a, b = make_photon("sync"), make_photon("sync")
        ha, hb = a.train(), b.train()
        assert trace(ha) == trace(hb)
        assert [(r.comm_bytes_up, r.comm_bytes_down) for r in ha] == \
               [(r.comm_bytes_up, r.comm_bytes_down) for r in hb]

    def test_async_bit_identical_reruns(self):
        a, b = make_photon("async"), make_photon("async")
        ha, hb = a.train(), b.train()
        assert trace(ha) == trace(hb)
        assert [(r.comm_bytes_up, r.comm_bytes_down) for r in ha] == \
               [(r.comm_bytes_up, r.comm_bytes_down) for r in hb]

    def test_max_workers_does_not_change_results(self):
        serial = make_photon("sync", max_workers=1)
        threaded = make_photon("sync", max_workers=4)
        hs, ht = serial.train(), threaded.train()
        assert trace(hs) == trace(ht)
        assert [(r.comm_bytes_up, r.comm_bytes_down) for r in hs] == \
               [(r.comm_bytes_up, r.comm_bytes_down) for r in ht]

    def test_async_max_workers_does_not_change_results(self):
        serial = make_photon("async", max_workers=1)
        threaded = make_photon("async", max_workers=4)
        assert trace(serial.train()) == trace(threaded.train())


class TestPhotonValidation:
    def test_max_workers_validated(self):
        with pytest.raises(ValueError):
            make_photon(max_workers=0)
        with pytest.raises(ValueError):
            make_photon(max_workers=-2)

    def test_uptime_validated(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                make_photon(uptime=bad)

    def test_speed_spread_validated(self):
        with pytest.raises(ValueError):
            make_photon(client_speed_spread=0.9)

    def test_speed_spread_requires_walltime(self):
        with pytest.raises(ValueError):
            make_photon(client_speed_spread=4.0)  # no walltime_config

    def test_boundary_values_accepted(self):
        photon = make_photon(uptime=1.0, max_workers=1, rounds=1)
        assert photon.train(rounds=1) is not None


class TestCLIAsync:
    def test_parser_accepts_async_flags(self):
        args = build_parser().parse_args(
            ["train", "--mode", "async", "--buffer-size", "2",
             "--staleness-alpha", "0.3", "--straggler-spread", "2.0",
             "--walltime"])
        assert args.mode == "async"
        assert args.buffer_size == 2
        assert args.staleness_alpha == 0.3
        assert args.straggler_spread == 2.0

    def test_parser_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--mode", "semi"])

    @pytest.mark.slow
    def test_train_async_end_to_end(self, capsys):
        from repro.cli import main

        assert main(["train", "--model", "tiny", "--clients", "2",
                     "--local-steps", "2", "--rounds", "2",
                     "--batch-size", "2", "--mode", "async",
                     "--walltime", "--straggler-spread", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "engine          : async" in out
        assert "simulated wall" in out
