"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def numeric_grad(fn, arrays: list[np.ndarray], index: int, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of ``fn(*arrays).sum()`` w.r.t.
    ``arrays[index]``; fn receives raw NumPy arrays."""
    base = [a.astype(np.float64).copy() for a in arrays]
    grad = np.zeros_like(base[index])
    flat = grad.reshape(-1)
    target = base[index].reshape(-1)
    for i in range(flat.size):
        original = target[i]
        target[i] = original + eps
        plus = float(np.sum(fn(*base)))
        target[i] = original - eps
        minus = float(np.sum(fn(*base)))
        target[i] = original
        flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(op, arrays: list[np.ndarray], atol: float = 1e-2,
                    rtol: float = 1e-2) -> None:
    """Assert autograd gradients of ``op`` match finite differences.

    ``op`` maps Tensors to one Tensor; the scalar loss is its sum.
    """
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = op(*tensors)
    out.sum().backward()

    def as_numpy(*raw):
        return op(*[Tensor(r) for r in raw]).data

    for i, t in enumerate(tensors):
        expected = numeric_grad(as_numpy, arrays, i)
        assert t.grad is not None, f"missing gradient for operand {i}"
        np.testing.assert_allclose(
            t.grad, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for operand {i}",
        )
