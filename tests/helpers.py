"""Shared test utilities: finite-difference gradient checking and the
crash-injection checkpoint/resume harness."""

from __future__ import annotations

import tempfile
from dataclasses import asdict

import numpy as np

from repro.tensor import Tensor


# ----------------------------------------------------------------------
# Crash-injection checkpoint/resume harness (PR 5).
#
# ``build_photon`` is a factory taking FedConfig field overrides and
# returning a *fresh* Photon for the same experiment — the harness
# uses it three times: for the uninterrupted reference run, for the
# run it "kills" after ``kill_at`` server updates (the object is
# simply dropped, exactly what a crash leaves behind: nothing but the
# checkpoint directory), and for the resumed run restored from disk.
# ----------------------------------------------------------------------

def run_crash_resume(build_photon, rounds: int, kill_at: int, **checkpoint_overrides):
    """Run uninterrupted vs kill-at-``kill_at``-then-resume.

    Returns ``(full, resumed)`` Photon instances, both having
    completed ``rounds`` server updates.
    """
    if not 1 <= kill_at < rounds:
        raise ValueError(f"kill_at must be in [1, {rounds}), got {kill_at}")
    full = build_photon()
    full.train(rounds=rounds)
    with tempfile.TemporaryDirectory() as tmp:
        interrupted = build_photon(checkpoint_dir=tmp, **checkpoint_overrides)
        interrupted.train(rounds=kill_at)
        del interrupted  # the crash: only the checkpoint dir survives
        resumed = build_photon(checkpoint_dir=tmp, resume=True,
                               **checkpoint_overrides)
        assert resumed.resumed_from_round == kill_at
        resumed.train(rounds=rounds)
    return full, resumed


def assert_states_equal(a: dict, b: dict) -> None:
    """Bit-exact equality of two state dicts (dtypes included)."""
    assert a.keys() == b.keys()
    for key in a:
        assert a[key].dtype == b[key].dtype, key
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


def assert_bit_exact_resume(full, resumed) -> None:
    """The headline guarantee: same final weights, RoundRecords and
    drop ledger as the uninterrupted run."""
    ha, hb = full.history, resumed.history
    assert len(ha) == len(hb)
    for ra, rb in zip(ha, hb):
        assert asdict(ra) == asdict(rb), f"round {ra.round_idx} diverged"
    assert_states_equal(full.aggregator.global_state,
                        resumed.aggregator.global_state)
    ledger_a = getattr(full.aggregator, "drop_ledger", None)
    ledger_b = getattr(resumed.aggregator, "drop_ledger", None)
    if ledger_a is not None:
        assert ledger_a.state_dict() == ledger_b.state_dict()
    ra, rb = full.result(), resumed.result()
    assert ra.total_comm_bytes == rb.total_comm_bytes
    assert ra.tokens_processed == rb.tokens_processed


def numeric_grad(fn, arrays: list[np.ndarray], index: int, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of ``fn(*arrays).sum()`` w.r.t.
    ``arrays[index]``; fn receives raw NumPy arrays."""
    base = [a.astype(np.float64).copy() for a in arrays]
    grad = np.zeros_like(base[index])
    flat = grad.reshape(-1)
    target = base[index].reshape(-1)
    for i in range(flat.size):
        original = target[i]
        target[i] = original + eps
        plus = float(np.sum(fn(*base)))
        target[i] = original - eps
        minus = float(np.sum(fn(*base)))
        target[i] = original
        flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(op, arrays: list[np.ndarray], atol: float = 1e-2,
                    rtol: float = 1e-2) -> None:
    """Assert autograd gradients of ``op`` match finite differences.

    ``op`` maps Tensors to one Tensor; the scalar loss is its sum.
    """
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = op(*tensors)
    out.sum().backward()

    def as_numpy(*raw):
        return op(*[Tensor(r) for r in raw]).data

    for i, t in enumerate(tensors):
        expected = numeric_grad(as_numpy, arrays, i)
        assert t.grad is not None, f"missing gradient for operand {i}"
        np.testing.assert_allclose(
            t.grad, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for operand {i}",
        )
