"""Layers, module system, attention and the decoder LM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.nn import (
    MLP,
    CausalSelfAttention,
    DecoderLM,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    alibi_slopes,
)
from repro.nn.attention import _alibi_bias, _causal_bias
from repro.tensor import Tensor


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = Linear(4, 3)
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_registration(self):
        mlp = MLP(4, expansion_ratio=2)
        names = {n for n, _ in mlp.named_parameters()}
        assert names == {"up.weight", "up.bias", "down.weight", "down.bias"}

    def test_tied_parameters_deduplicated(self, micro_model_config):
        model = DecoderLM(micro_model_config)
        params = model.parameters()
        assert len({id(p) for p in params}) == len(params)

    def test_state_dict_roundtrip(self, micro_model_config):
        model = DecoderLM(micro_model_config, seed=0)
        other = DecoderLM(micro_model_config, seed=1)
        other.load_state_dict(model.state_dict())
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_state_dict_rejects_bad_keys(self, micro_model_config):
        model = DecoderLM(micro_model_config)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self, micro_model_config):
        model = DecoderLM(micro_model_config)
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self, micro_model_config):
        model = DecoderLM(micro_model_config)
        model.eval()
        assert not model.blocks._blocks[0].drop.training
        model.train()
        assert model.blocks._blocks[0].drop.training

    def test_zero_grad(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((1, 3)), requires_grad=True))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes_and_bias(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 7, 5))))
        assert out.shape == (2, 7, 3)
        no_bias = Linear(5, 3, bias=False, rng=rng)
        assert no_bias.bias is None

    def test_embedding_range_check(self, rng):
        emb = Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_layernorm_learnable(self, rng):
        ln = LayerNorm(6)
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        ln(x).sum().backward()
        assert ln.gamma.grad is not None
        assert ln.beta.grad is not None

    def test_dropout_respects_training_flag(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = Tensor(rng.normal(size=(8, 8)))
        assert drop(x) is x


class TestALiBi:
    def test_slopes_power_of_two(self):
        slopes = alibi_slopes(8)
        assert slopes.shape == (8,)
        # Geometric sequence: constant ratio.
        ratios = slopes[1:] / slopes[:-1]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-5)
        assert (slopes > 0).all() and (slopes < 1).all()

    def test_slopes_non_power_of_two(self):
        slopes = alibi_slopes(6)
        assert slopes.shape == (6,)
        assert (slopes > 0).all()

    def test_bias_is_causal(self):
        bias = _alibi_bias(2, 5)
        upper = np.triu_indices(5, k=1)
        assert (bias[:, upper[0], upper[1]] <= -1e8).all()
        # Diagonal contributes zero bias.
        np.testing.assert_allclose(np.diagonal(bias, axis1=1, axis2=2), 0.0)

    def test_bias_decreases_with_distance(self):
        bias = _alibi_bias(1, 6)[0]
        row = bias[5, :6]  # last query, keys 0..5
        assert (np.diff(row) > 0).all()  # closer keys get higher bias

    def test_causal_bias_without_alibi(self):
        bias = _causal_bias(4)[0]
        assert bias[2, 3] <= -1e8
        assert bias[3, 2] == 0.0


class TestAttention:
    def test_output_shape(self, rng):
        attn = CausalSelfAttention(16, 4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_causality(self, rng):
        """Changing a future token must not affect earlier outputs."""
        attn = CausalSelfAttention(8, 2, rng=np.random.default_rng(0))
        x = rng.normal(size=(1, 5, 8)).astype(np.float32)
        base = attn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 4] += 10.0  # perturb the last position
        perturbed = attn(Tensor(x2)).data
        np.testing.assert_allclose(base[0, :4], perturbed[0, :4], atol=1e-5)
        assert not np.allclose(base[0, 4], perturbed[0, 4])

    def test_bias_cache_reused(self, rng):
        attn = CausalSelfAttention(8, 2, rng=rng)
        attn(Tensor(rng.normal(size=(1, 4, 8))))
        first = attn._bias_cache[4]
        attn(Tensor(rng.normal(size=(1, 4, 8))))
        assert attn._bias_cache[4] is first

    def test_invalid_head_count(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(10, 3)


class TestDecoderLM:
    def test_logits_shape(self, micro_model_config, rng):
        model = DecoderLM(micro_model_config)
        tokens = rng.integers(0, micro_model_config.vocab_size, size=(2, 8))
        logits = model(tokens)
        assert logits.shape == (2, 8, micro_model_config.vocab_size)

    def test_1d_input_promoted(self, micro_model_config, rng):
        model = DecoderLM(micro_model_config)
        tokens = rng.integers(0, micro_model_config.vocab_size, size=8)
        assert model(tokens).shape == (1, 8, micro_model_config.vocab_size)

    def test_seq_len_limit(self, micro_model_config):
        model = DecoderLM(micro_model_config)
        too_long = np.zeros((1, micro_model_config.seq_len + 1), dtype=np.int64)
        with pytest.raises(ValueError):
            model(too_long)

    def test_seed_determinism(self, micro_model_config, rng):
        a = DecoderLM(micro_model_config, seed=3)
        b = DecoderLM(micro_model_config, seed=3)
        tokens = rng.integers(0, micro_model_config.vocab_size, size=(1, 8))
        np.testing.assert_array_equal(a(tokens).data, b(tokens).data)

    def test_different_seeds_differ(self, micro_model_config):
        a = DecoderLM(micro_model_config, seed=0)
        b = DecoderLM(micro_model_config, seed=1)
        assert not np.allclose(
            a.tok_emb.weight.data, b.tok_emb.weight.data
        )

    def test_tied_embeddings_share_memory(self, micro_model_config):
        model = DecoderLM(micro_model_config)
        assert model.lm_head_weight is None
        untied = DecoderLM(micro_model_config.scaled(tie_embeddings=False))
        assert untied.lm_head_weight is not None
        assert untied.num_parameters() > model.num_parameters()

    def test_initial_loss_near_uniform(self, micro_model_config, rng):
        model = DecoderLM(micro_model_config)
        tokens = rng.integers(0, micro_model_config.vocab_size, size=(4, 16))
        loss = model.loss(tokens[:, :-1], tokens[:, 1:]).item()
        assert abs(loss - np.log(micro_model_config.vocab_size)) < 0.5

    def test_few_steps_reduce_loss(self, micro_model_config, c4_stream):
        from repro.optim import AdamW

        model = DecoderLM(micro_model_config, seed=0)
        opt = AdamW(model.parameters(), lr=5e-3, weight_decay=0.0)
        x, y = c4_stream.next_batch()
        first = model.loss(x, y)
        model.zero_grad()
        first.backward()
        opt.step()
        for _ in range(10):
            x, y = c4_stream.next_batch()
            loss = model.loss(x, y)
            model.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < float(first.data)

    def test_gradients_flow_to_all_parameters(self, micro_model_config, rng):
        model = DecoderLM(micro_model_config)
        tokens = rng.integers(0, micro_model_config.vocab_size, size=(2, 8))
        model.loss(tokens[:, :-1], tokens[:, 1:]).backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"
            assert np.isfinite(p.grad).all(), f"non-finite gradient for {name}"

    def test_generate_length_and_range(self, micro_model_config):
        model = DecoderLM(micro_model_config)
        prompt = np.array([2, 3, 4])
        out = model.generate(prompt, max_new_tokens=5,
                             rng=np.random.default_rng(0))
        assert out.shape == (8,)
        assert (out >= 0).all() and (out < micro_model_config.vocab_size).all()

    def test_generate_greedy_deterministic(self, micro_model_config):
        model = DecoderLM(micro_model_config)
        prompt = np.array([2, 3])
        a = model.generate(prompt, 4, temperature=0.0)
        b = model.generate(prompt, 4, temperature=0.0)
        np.testing.assert_array_equal(a, b)

    def test_logprobs_shape_and_validity(self, micro_model_config, rng):
        model = DecoderLM(micro_model_config)
        tokens = rng.integers(0, micro_model_config.vocab_size, size=(2, 6))
        lp = model.logprobs(tokens)
        assert lp.shape == (2, 5)
        assert (lp <= 0).all()

    def test_perplexity_is_exp_loss(self, micro_model_config, rng):
        model = DecoderLM(micro_model_config)
        tokens = rng.integers(0, micro_model_config.vocab_size, size=(2, 8))
        x, y = tokens[:, :-1], tokens[:, 1:]
        np.testing.assert_allclose(
            model.perplexity(x, y), np.exp(model.loss(x, y).item()), rtol=1e-5
        )


class TestModelConfig:
    def test_param_count_close_to_actual(self, micro_model_config):
        model = DecoderLM(micro_model_config)
        estimate = micro_model_config.n_params
        actual = model.num_parameters()
        assert abs(estimate - actual) / actual < 0.05

    def test_paper_sizes_roughly_match_names(self):
        from repro.config import PAPER_MODELS

        assert 0.8e8 < PAPER_MODELS["125M"].n_params < 1.8e8
        assert 1.0e9 < PAPER_MODELS["1.3B"].n_params < 1.7e9
        assert 2.3e9 < PAPER_MODELS["3B"].n_params < 3.6e9
        assert 5.5e9 < PAPER_MODELS["7B"].n_params < 8.5e9

    def test_invalid_heads_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig("bad", n_blocks=1, d_model=10, n_heads=3)
