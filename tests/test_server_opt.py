"""Server optimizer math (FedAvg / FedMom / FedAdam / Nesterov)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fed import FedAdam, FedAvg, FedMom, NesterovOuter, make_server_opt


def state(*values) -> dict:
    return {"w": np.asarray(values, dtype=np.float32)}


class TestFedAvg:
    def test_lr_one_is_parameter_averaging(self):
        """FedAvg with lr=1 recovers the mean of client models:
        θ − mean(θ − θ_k) = mean(θ_k)."""
        global_state = state(1.0, 2.0)
        client_states = [state(0.0, 1.0), state(2.0, 5.0)]
        deltas = [{"w": global_state["w"] - c["w"]} for c in client_states]
        mean_delta = {"w": np.mean([d["w"] for d in deltas], axis=0)}
        out = FedAvg(lr=1.0).step(global_state, mean_delta)
        np.testing.assert_allclose(out["w"], [1.0, 3.0])

    def test_partial_lr_interpolates(self):
        out = FedAvg(lr=0.5).step(state(1.0), state(1.0))
        np.testing.assert_allclose(out["w"], [0.5])

    def test_zero_delta_is_identity(self):
        out = FedAvg().step(state(3.0), state(0.0))
        np.testing.assert_allclose(out["w"], [3.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            FedAvg(lr=0.0)


class TestFedMom:
    def test_momentum_accumulates_across_rounds(self):
        opt = FedMom(lr=1.0, momentum=0.5)
        s = state(0.0)
        s = opt.step(s, state(1.0))  # v=1, move 1
        np.testing.assert_allclose(s["w"], [-1.0])
        s = opt.step(s, state(1.0))  # v=1.5, move 1.5
        np.testing.assert_allclose(s["w"], [-2.5])

    def test_reset_clears_velocity(self):
        opt = FedMom(lr=1.0, momentum=0.9)
        opt.step(state(0.0), state(1.0))
        opt.reset()
        out = opt.step(state(0.0), state(1.0))
        np.testing.assert_allclose(out["w"], [-1.0])

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            FedMom(momentum=1.0)


class TestFedAdam:
    def test_first_step_magnitude(self):
        opt = FedAdam(lr=0.1)
        out = opt.step(state(0.0), state(1.0))
        # Bias-corrected Adam first step ≈ lr * sign(grad).
        np.testing.assert_allclose(out["w"], [-0.1], rtol=1e-4)

    def test_adaptive_scaling(self):
        """Large and small coordinates move by similar magnitudes."""
        opt = FedAdam(lr=0.1)
        out = opt.step({"w": np.zeros(2, dtype=np.float32)},
                       {"w": np.array([100.0, 0.01], dtype=np.float32)})
        assert abs(out["w"][0]) == pytest.approx(abs(out["w"][1]), rel=0.01)

    def test_reset(self):
        opt = FedAdam(lr=0.1)
        opt.step(state(0.0), state(1.0))
        opt.reset()
        assert opt._t == 0


class TestNesterovOuter:
    def test_matches_manual_recursion(self):
        opt = NesterovOuter(lr=0.1, momentum=0.9)
        s = state(0.0)
        v = 0.0
        expected = 0.0
        for _ in range(3):
            delta = 1.0
            v = 0.9 * v + delta
            expected -= 0.1 * (delta + 0.9 * v)
            s = opt.step(s, state(1.0))
        np.testing.assert_allclose(s["w"], [expected], rtol=1e-5)

    def test_momentum_bounds(self):
        with pytest.raises(ValueError):
            NesterovOuter(momentum=0.0)
        with pytest.raises(ValueError):
            NesterovOuter(momentum=1.0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("fedavg", FedAvg),
        ("fedmom", FedMom),
        ("fedavgm", FedMom),
        ("fedadam", FedAdam),
        ("nesterov", NesterovOuter),
        ("diloco", NesterovOuter),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_server_opt(name, lr=0.5, momentum=0.9), cls)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_server_opt("sgdr")

    def test_lr_passthrough(self):
        assert make_server_opt("fedavg", lr=0.25).lr == 0.25
