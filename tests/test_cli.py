"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _warmup_for, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "tiny"
        assert args.clients == 4

    def test_walltime_args(self):
        args = build_parser().parse_args(
            ["walltime", "--model", "7B", "--clients", "4", "--overlap"])
        assert args.model == "7B"
        assert args.overlap

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_fault_flags(self):
        args = build_parser().parse_args(
            ["train", "--mode", "async", "--deadline", "5.5",
             "--drop-policy", "requeue", "--adaptive-local-steps",
             "--crash-prob", "0.1"])
        assert args.deadline == 5.5
        assert args.drop_policy == "requeue"
        assert args.adaptive_local_steps
        assert args.crash_prob == 0.1

    def test_drop_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--deadline", "5", "--drop-policy", "discard"])

    def test_compression_flags(self):
        args = build_parser().parse_args(
            ["train", "--compression", "topk:0.1+fp16", "--error-feedback",
             "--compress-broadcast", "--stat-utility-weight", "1.5"])
        assert args.compression == "topk:0.1+fp16"
        assert args.error_feedback and args.compress_broadcast
        assert args.stat_utility_weight == 1.5
        assert build_parser().parse_args(["train"]).compression == "none"

    def test_bad_compression_spec_is_usage_error(self, capsys):
        assert main(["train", "--compression", "int7"]) == 2
        assert "compression" in capsys.readouterr().err
        assert main(["train", "--compress-broadcast"]) == 2
        assert "compress_broadcast" in capsys.readouterr().err

    @pytest.mark.slow
    def test_fault_abort_is_one_line_not_a_traceback(self, capsys):
        """An exhausted retry budget under crash injection aborts the
        run; the CLI reports it in one line (exit 1), no traceback."""
        assert main(["train", "--model", "tiny", "--clients", "2",
                     "--local-steps", "1", "--rounds", "2",
                     "--batch-size", "2", "--crash-prob", "0.9"]) == 1
        err = capsys.readouterr().err
        assert "aborted" in err and "Traceback" not in err


class TestWarmupSchedule:
    """`--rounds 1 --local-steps 1` used to produce warmup == total
    steps, which WarmupCosine rejects; warmup must stay strictly
    below the total."""

    def test_one_step_run_gets_zero_warmup(self):
        assert _warmup_for(1) == 0

    def test_short_runs_keep_warmup(self):
        assert _warmup_for(2) == 1
        assert _warmup_for(4) == 1
        assert _warmup_for(8) == 2

    @pytest.mark.parametrize("total", [1, 2, 3, 4, 5, 8, 64, 1000])
    def test_warmup_always_below_total(self, total):
        from repro.optim import WarmupCosine

        warmup = _warmup_for(total)
        assert 0 <= warmup < total
        # The schedule construction that `repro train` performs.
        sched = WarmupCosine(1e-3, warmup, total)
        assert sched(0) > 0


class TestUsageErrors:
    """Config mistakes print a one-line usage error (exit code 2)
    instead of a raw traceback."""

    def expect_error(self, argv, capsys, needle):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"repro {argv[0]}: error:")
        assert needle in err
        assert len(err.strip().splitlines()) == 1  # one line, no traceback

    def test_buffer_size_requires_async(self, capsys):
        self.expect_error(["train", "--buffer-size", "2"], capsys,
                          "buffer_size only applies to mode='async'")

    def test_staleness_alpha_requires_async(self, capsys):
        self.expect_error(["train", "--staleness-alpha", "0.5"], capsys,
                          "staleness_alpha")

    def test_deadline_requires_async(self, capsys):
        self.expect_error(["train", "--deadline", "5"], capsys, "deadline")

    def test_drop_policy_requires_deadline(self, capsys):
        self.expect_error(
            ["train", "--mode", "async", "--drop-policy", "drop"],
            capsys, "drop_policy needs a deadline")

    def test_adaptive_steps_require_async(self, capsys):
        self.expect_error(["train", "--adaptive-local-steps"], capsys,
                          "adaptive_local_steps")

    def test_sampled_exceeding_population(self, capsys):
        self.expect_error(["train", "--clients", "2", "--sampled", "4"],
                          capsys, "exceeds")

    def test_unknown_model_preset(self, capsys):
        self.expect_error(["train", "--model", "900B"], capsys,
                          "unknown model")

    def test_straggler_spread_below_one(self, capsys):
        self.expect_error(["train", "--straggler-spread", "0.5"], capsys,
                          "client_speed_spread")

    def test_impossible_deadline(self, capsys):
        # Unit clock (no --walltime): every cycle costs 1 simulated
        # second, so a 0.5 s deadline can never admit an update.
        self.expect_error(
            ["train", "--model", "tiny", "--clients", "2", "--local-steps",
             "2", "--rounds", "1", "--batch-size", "2", "--mode", "async",
             "--deadline", "0.5"],
            capsys, "fastest client cycle")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "7B" in out
        assert "regional resources" in out

    def test_topology(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "Maharashtra" in out
        assert "best RAR ring" in out

    def test_walltime(self, capsys):
        assert main(["walltime", "--model", "125M", "--clients", "8",
                     "--local-steps", "512"]) == 0
        out = capsys.readouterr().out
        assert "round compute   : 256.0 s" in out

    def test_walltime_overlap_cheaper(self, capsys):
        main(["walltime", "--model", "7B", "--clients", "4",
              "--topology", "ps", "--bandwidth-gbps", "1"])
        plain = capsys.readouterr().out
        main(["walltime", "--model", "7B", "--clients", "4",
              "--topology", "ps", "--bandwidth-gbps", "1", "--overlap"])
        overlapped = capsys.readouterr().out

        def total(text):
            line = [ln for ln in text.splitlines() if "total wall" in ln][0]
            return float(line.split(":")[1].split("h")[0])

        assert total(overlapped) <= total(plain)

    @pytest.mark.slow
    def test_train_micro(self, capsys):
        assert main(["train", "--model", "tiny", "--clients", "2",
                     "--local-steps", "2", "--rounds", "1",
                     "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "best perplexity" in out

    @pytest.mark.slow
    def test_train_single_step_run(self, capsys):
        """Regression: --rounds 1 --local-steps 1 tripped the warmup
        schedule edge (warmup == total steps)."""
        assert main(["train", "--model", "tiny", "--clients", "2",
                     "--local-steps", "1", "--rounds", "1",
                     "--batch-size", "2"]) == 0
        assert "best perplexity" in capsys.readouterr().out

    @pytest.mark.slow
    def test_train_fault_tolerant_async(self, capsys):
        assert main(["train", "--model", "tiny", "--clients", "3",
                     "--local-steps", "2", "--rounds", "2",
                     "--batch-size", "2", "--mode", "async",
                     "--walltime", "--straggler-spread", "3.0",
                     "--deadline", "2.5", "--drop-policy", "drop",
                     "--adaptive-local-steps", "--crash-prob", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "deadline        : 2.5 s (drop)" in out
        assert "crashes" in out

    def test_diloco_micro(self, capsys):
        assert main(["diloco", "--model", "tiny", "--clients", "2",
                     "--local-steps", "2", "--rounds", "1",
                     "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "val_ppl" in out
