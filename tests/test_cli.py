"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "tiny"
        assert args.clients == 4

    def test_walltime_args(self):
        args = build_parser().parse_args(
            ["walltime", "--model", "7B", "--clients", "4", "--overlap"])
        assert args.model == "7B"
        assert args.overlap

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "7B" in out
        assert "regional resources" in out

    def test_topology(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "Maharashtra" in out
        assert "best RAR ring" in out

    def test_walltime(self, capsys):
        assert main(["walltime", "--model", "125M", "--clients", "8",
                     "--local-steps", "512"]) == 0
        out = capsys.readouterr().out
        assert "round compute   : 256.0 s" in out

    def test_walltime_overlap_cheaper(self, capsys):
        main(["walltime", "--model", "7B", "--clients", "4",
              "--topology", "ps", "--bandwidth-gbps", "1"])
        plain = capsys.readouterr().out
        main(["walltime", "--model", "7B", "--clients", "4",
              "--topology", "ps", "--bandwidth-gbps", "1", "--overlap"])
        overlapped = capsys.readouterr().out

        def total(text):
            line = [l for l in text.splitlines() if "total wall" in l][0]
            return float(line.split(":")[1].split("h")[0])

        assert total(overlapped) <= total(plain)

    @pytest.mark.slow
    def test_train_micro(self, capsys):
        assert main(["train", "--model", "tiny", "--clients", "2",
                     "--local-steps", "2", "--rounds", "1",
                     "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "best perplexity" in out

    def test_diloco_micro(self, capsys):
        assert main(["diloco", "--model", "tiny", "--clients", "2",
                     "--local-steps", "2", "--rounds", "1",
                     "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "val_ppl" in out
