"""End-to-end integration scenarios across the full system surface.

Each test exercises a realistic multi-component workflow rather than a
single unit: the kind of path a downstream adopter would actually run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import FedConfig, ModelConfig, OptimConfig, WallTimeConfig
from repro.data import CachedTokenStream, MixedStream, SyntheticC4, SyntheticPile
from repro.eval import BigramTask, score_task
from repro.fed import (
    Aggregator,
    CheckpointManager,
    ClipUpdate,
    Compose,
    DPGaussianNoise,
    FailureModel,
    FaultPolicy,
    LLMClient,
    Link,
    Photon,
    PowerOfChoiceSampler,
    TiesAggregator,
    personalize,
)
from repro.net import WallTimeModel
from repro.nn import DecoderLM, InferenceEngine
from repro.optim import ConstantLR, WarmupCosine, federated_schedule_steps
from repro.utils import save_report, state_to_vector

CFG = ModelConfig("int", n_blocks=1, d_model=16, n_heads=2, vocab_size=32, seq_len=16)
OPTIM = OptimConfig(max_lr=4e-3, warmup_steps=2, schedule_steps=128,
                    batch_size=4, weight_decay=0.0)


class TestFullLifecycle:
    @pytest.mark.slow
    def test_pretrain_checkpoint_recover_serve(self, tmp_path):
        """Pre-train -> crash -> recover from checkpoint -> evaluate
        downstream -> serve via the inference engine."""
        manager = CheckpointManager(tmp_path, keep=3)
        photon = Photon(
            CFG,
            FedConfig(population=2, clients_per_round=2, local_steps=8, rounds=3),
            OPTIM, data_seed=3,
        )
        photon.aggregator.checkpointer = manager
        history = photon.train()
        assert history.val_perplexities[-1] < history.val_perplexities[0]

        # "Crash": rebuild everything from disk only.
        step, state, _ = manager.load()
        assert step == 2
        model = DecoderLM(CFG, seed=0)
        model.load_state_dict(state)
        np.testing.assert_allclose(
            state_to_vector(model.state_dict()),
            state_to_vector(photon.aggregator.global_state), rtol=1e-6,
        )

        # Downstream + serving on the recovered model.
        source = SyntheticC4(num_shards=2, vocab=CFG.vocab_size, seed=3).shard(0)
        acc = score_task(model, BigramTask(source, seed=5), n_examples=30)
        assert acc > 0.6
        engine = InferenceEngine(model)
        out = engine.generate(np.array([3, 4]), max_new_tokens=5, temperature=0.0)
        np.testing.assert_array_equal(
            out, model.generate(np.array([3, 4]), 5, temperature=0.0)
        )

    @pytest.mark.slow
    def test_report_pipeline(self, tmp_path):
        """History -> JSON/markdown artifacts round-trip."""
        photon = Photon(
            CFG,
            FedConfig(population=2, clients_per_round=2, local_steps=4, rounds=2),
            OPTIM, data_seed=3,
            walltime_config=WallTimeConfig(throughput=2.0, bandwidth_mbps=312.0,
                                           model_mb=0.05),
        )
        history = photon.train()
        path = save_report(history, tmp_path / "run.json",
                           metadata={"model": CFG.name})
        doc = json.loads(path.read_text())
        assert doc["summary"]["rounds"] == 2
        assert doc["rounds"][0]["wall_time_s"] > 0
        assert doc["summary"]["total_comm_bytes"] == history.total_comm_bytes


class TestHardenedDeployment:
    def test_everything_on_stack(self, tmp_path):
        """Crashing clients + partial-update policy + DP clipping +
        power-of-choice sampling + quantized link + wall-time model,
        all in one federation — and it still converges."""
        c4 = SyntheticC4(num_shards=4, vocab=CFG.vocab_size, seed=1)
        post = Compose([ClipUpdate(50.0),
                        DPGaussianNoise(clip_norm=50.0, noise_multiplier=1e-4,
                                        seed=0)])
        clients = {
            f"c{i}": LLMClient(
                f"c{i}", CFG,
                CachedTokenStream(c4.shard(i), 4, CFG.seq_len, seed=i),
                OPTIM, ConstantLR(4e-3), post_process=post,
            )
            for i in range(4)
        }
        sampler = PowerOfChoiceSampler(k=3, candidates=4, seed=0)
        agg = Aggregator(
            CFG, clients,
            sampler=sampler,
            val_stream=CachedTokenStream(c4.validation(), 4, CFG.seq_len, seed=99),
            link=Link(quantize_int8=True),
            failure_model=FailureModel(crash_prob=0.1, seed=7),
            fault_policy=FaultPolicy(mode="partial"),
            walltime=WallTimeModel(WallTimeConfig(2.0, 312.0, 0.05)),
            comm_topology="ps",
        )
        for r in range(4):
            record = agg.run_round(r, 8)
            sampler.update_losses(
                {cid: record.client_metrics.get("train_loss_mean", 1.0)
                 for cid in record.clients}
            )
        ppls = agg.history.val_perplexities
        assert ppls[-1] < ppls[0]
        assert agg.simulated_wall_time_s > 0

    def test_ties_on_heterogeneous_with_personalization(self):
        """Heterogeneous pre-training with TIES merging, then
        per-client personalization on the hardest source."""
        photon = Photon(
            CFG,
            FedConfig(population=4, clients_per_round=4, local_steps=8, rounds=3),
            OPTIM, corpus="pile", heterogeneity=0.5,
            merge_fn=TiesAggregator(density=0.5), data_seed=3,
        )
        history = photon.train()
        assert history.val_perplexities[-1] < history.val_perplexities[0]

        pile = SyntheticPile(vocab=CFG.vocab_size, seed=3, heterogeneity=0.5)
        private = CachedTokenStream(pile.sources["gutenberg"], 4, CFG.seq_len,
                                    seed=17)
        result = personalize(photon.aggregator.global_state, CFG, private,
                             steps=10, optim=OPTIM)
        assert result.ppl_after < result.ppl_before


class TestRecipeComposition:
    @pytest.mark.slow
    def test_table5_style_schedule_stretch(self):
        """Build the federated schedule from a centralized recipe via
        the Table 5 stretch rule and verify the client follows it."""
        cent_steps, cent_batch, local_batch = 64, 16, 4
        fed_steps = federated_schedule_steps(cent_steps, cent_batch, local_batch)
        assert fed_steps == 256
        schedule = WarmupCosine(4e-3, warmup_steps=8, total_steps=fed_steps)
        photon = Photon(
            CFG,
            FedConfig(population=2, clients_per_round=2, local_steps=8, rounds=2),
            OptimConfig(max_lr=4e-3, warmup_steps=8, schedule_steps=fed_steps,
                        batch_size=local_batch, weight_decay=0.0),
            schedule=schedule, data_seed=3,
        )
        history = photon.train()
        lr_final = history.records[-1].client_metrics["lr_final"]
        assert lr_final == pytest.approx(schedule(15))

    def test_mixed_stream_client(self):
        """A client consuming a weighted mixture of two sources (the
        public-DS sharing scenario) trains normally."""
        pile = SyntheticPile(vocab=CFG.vocab_size, seed=3, heterogeneity=0.5)
        a = CachedTokenStream(pile.sources["c4"], 4, CFG.seq_len, seed=1)
        b = CachedTokenStream(pile.sources["arxiv"], 4, CFG.seq_len, seed=2)
        mixed = MixedStream([a, b], weights=[0.7, 0.3], seed=0)
        solo = CachedTokenStream(pile.sources["wikipedia"], 4, CFG.seq_len, seed=3)
        photon = Photon(
            CFG,
            FedConfig(population=2, clients_per_round=2, local_steps=6, rounds=2),
            OPTIM, corpus={"client0": mixed, "client1": solo}, data_seed=3,
        )
        history = photon.train()
        assert np.isfinite(history.val_perplexities).all()

    @pytest.mark.slow
    def test_parallel_workers_full_photon(self):
        """Photon with threaded clients matches the sequential run."""
        def build(workers):
            return Photon(
                CFG,
                FedConfig(population=3, clients_per_round=3, local_steps=4,
                          rounds=2),
                OPTIM, data_seed=3, max_workers=workers,
            )

        seq = build(1)
        par = build(3)
        seq.train()
        par.train()
        np.testing.assert_allclose(
            state_to_vector(seq.aggregator.global_state),
            state_to_vector(par.aggregator.global_state),
            rtol=1e-5, atol=1e-6,
        )
