"""Server failover: versioned replication over the Link, seeded server
crashes, bounded staleness.

The headline guarantee mirrors PR 5's disk story but over the wire: a
run whose root server dies and promotes a replica finishes with the
**same history** as the uninterrupted run — the crash costs replayed
rounds (``updates_lost ≤ replicate_every``) and recovery wall time,
never correctness.  Edge-server crashes are the lossy counterpart:
unreplicated regions drop their cohort's updates, replicated ones pay
the backhaul hop twice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FedConfig, ModelConfig, OptimConfig
from repro.fed import FailureModel, Photon, ReplicaSet
from repro.fed.failover import deserialize_tree, serialize_tree
from repro.fed.link import Link

from helpers import assert_bit_exact_resume, assert_states_equal

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32,
                  seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64,
                    batch_size=2, weight_decay=0.0)


def make_photon(mode="sync", rounds=4, seed=0, crashes=None, **overrides):
    """``crashes`` is a set of scripted ``(round, server_id)`` keys;
    server ids are ``"root"``, ``"edge:<name>"``, ``"root/replica<i>"``."""
    fed_kwargs = dict(population=4, clients_per_round=4, local_steps=2,
                      rounds=rounds, mode=mode, seed=seed)
    if mode == "async":
        fed_kwargs.update(buffer_size=2, staleness_alpha=0.5)
    fed_kwargs.update(overrides)
    fed = FedConfig(**fed_kwargs)
    fm = FailureModel(scripted=set(crashes)) if crashes else None
    return Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                  server_failure_model=fm)


class TestSerializeTree:
    def test_dtypes_survive_the_wire(self):
        rng = np.random.default_rng(0)
        tree = {
            "weights": {"w": rng.normal(size=(8, 4)).astype(np.float32)},
            "counters": np.arange(5, dtype=np.int64),
            "pool": rng.integers(0, 256, size=16, dtype=np.uint8),
            "clock": np.float64(3.5),
        }
        payload, raw = serialize_tree(tree)
        assert isinstance(payload, bytes) and raw > len(payload) > 0
        back = deserialize_tree(payload)
        assert_states_equal(back["weights"], tree["weights"])
        np.testing.assert_array_equal(back["counters"], tree["counters"])
        assert back["counters"].dtype == np.int64
        np.testing.assert_array_equal(back["pool"], tree["pool"])
        assert back["pool"].dtype == np.uint8

    def test_deserialized_tree_shares_no_memory(self):
        tree = {"w": np.zeros(4, dtype=np.float32)}
        payload, _ = serialize_tree(tree)
        back = deserialize_tree(payload)
        tree["w"][:] = 7.0
        np.testing.assert_array_equal(back["w"], np.zeros(4))


class TestReplicaSet:
    @staticmethod
    def _tree(tag):
        return {"w": np.full(3, float(tag), dtype=np.float32)}

    def test_promote_returns_newest_surviving(self):
        rs = ReplicaSet("root", 2, Link())
        rs.replicate(1, self._tree(1))
        rs.replicate(3, self._tree(3))
        assert rs.held_versions == [3, 3]
        version, tree = rs.promote(None, at_version=4)
        assert version == 3
        np.testing.assert_array_equal(tree["w"], self._tree(3)["w"])

    def test_correlated_failure_falls_back_or_cold(self):
        rs = ReplicaSet("root", 2, Link())
        rs.replicate(2, self._tree(2))
        # The crash that killed the primary also took replica 0.
        fm = FailureModel(scripted={(2, "root/replica0")})
        version, _ = rs.promote(fm, at_version=2)
        assert version == 2  # replica 1 still holds it
        assert rs.held_versions == [None, 2]
        both = FailureModel(scripted={(3, "root/replica0"),
                                      (3, "root/replica1")})
        assert rs.promote(both, at_version=3) is None

    def test_replication_is_metered(self):
        link = Link()
        rs = ReplicaSet("root", 2, link)
        rs.replicate(1, self._tree(1))
        assert link.bytes_sent > 0
        assert link.raw_bytes_sent > link.bytes_sent  # zlib wins on fills
        assert link.messages_sent == 2

    def test_zero_replicas_is_inert(self):
        rs = ReplicaSet("root", 0, Link())
        rs.replicate(1, self._tree(1))
        assert rs.promote(None, at_version=1) is None


@pytest.mark.parametrize("mode", ["sync", "async"])
class TestRootFailover:
    def test_promoted_run_matches_uninterrupted(self, mode):
        """Dead root, surviving replica: ≤1 update lost at cadence 1,
        and the replay converges to the exact uninterrupted history."""
        clean = make_photon(mode=mode)
        crashed = make_photon(mode=mode, crashes={(1, "root")}, replicas=1)
        clean.train()
        crashed.train()
        assert_bit_exact_resume(clean, crashed)
        report = crashed.failover.report()
        assert report["crashes"] == 1
        assert report["updates_lost"] == [1]
        assert report["updates_lost_per_crash"] == 1.0
        assert report["replication_wire_bytes"] > 0
        assert len(report["recovery_s"]) == 1 and report["recovery_s"][0] > 0

    def test_cold_restart_without_replicas(self, mode):
        """No replicas: the crash rolls back to the version-0 snapshot
        and the whole prefix replays — slower, still bit-exact."""
        clean = make_photon(mode=mode)
        crashed = make_photon(mode=mode, crashes={(2, "root")})
        clean.train()
        crashed.train()
        assert_bit_exact_resume(clean, crashed)
        assert crashed.failover.updates_lost == [3]

    def test_staleness_bounded_by_replicate_every(self, mode):
        clean = make_photon(mode=mode)
        crashed = make_photon(mode=mode, crashes={(2, "root")},
                              replicas=2, replicate_every=2)
        clean.train()
        crashed.train()
        assert_bit_exact_resume(clean, crashed)
        assert crashed.failover.crashes == 1
        assert crashed.failover.updates_lost[0] <= 2

    def test_scripted_crash_fires_exactly_once(self, mode):
        """The crash stream is environment, not state: restoring a
        pre-crash snapshot must not rewind the scripted set, or the
        promoted server would replay its own death forever."""
        crashed = make_photon(mode=mode, crashes={(1, "root")}, replicas=1)
        history = crashed.train()
        assert crashed.failover.crashes == 1
        assert len(history) == 4

    def test_result_surfaces_failover_metrics(self, mode):
        crashed = make_photon(mode=mode, crashes={(1, "root")}, replicas=1)
        crashed.train()
        result = crashed.result()
        assert result.server_crashes == 1
        assert result.server_updates_lost == 1
        assert result.recovery_s_total > 0
        assert result.replication_wire_bytes > 0


class TestEdgeCrash:
    def test_unreplicated_edge_crash_drops_cohort(self):
        photon = make_photon(tiers=2, crashes={(1, "edge:Utah")})
        history = photon.train()
        crashed_round = history.records[1]
        assert crashed_round.edge_crashes == 1
        assert crashed_round.edge_updates_lost == 2  # Utah's cohort of 2
        assert crashed_round.backhaul_wire_bytes == 0  # nothing shipped
        result = photon.result()
        assert result.edge_crashes == 1
        assert result.edge_updates_lost == 2
        assert result.server_crashes == 0

    def test_replicated_edge_crash_reforwards(self):
        clean = make_photon(tiers=2)
        crashed = make_photon(tiers=2, crashes={(1, "edge:Utah")}, replicas=1)
        clean.train()
        crashed.train()
        record = crashed.history.records[1]
        assert record.edge_crashes == 1
        assert record.edge_updates_lost == 0
        # The replica re-forwards the buffered delta: hop paid twice.
        assert record.backhaul_wire_bytes == \
            2 * clean.history.records[1].backhaul_wire_bytes
        assert crashed.aggregator.edge_tier.total_recoveries == 1

    def test_all_regions_crashed_floor(self):
        """Every participating region dead and unreplicated: like the
        AvailabilityModel floor, the tier admits the last casualty
        rather than hand the server an empty merge."""
        from repro.fed import EdgeTier, Region

        tier = EdgeTier(
            [Region("A", 1.0), Region("B", 1.0)],
            assign=lambda cid: 0 if cid < "c2" else 1,
            backhaul=Link(),
            failure_model=FailureModel(scripted={(0, "edge:A"),
                                                 (0, "edge:B")}))
        deltas = [{"w": np.full(4, float(i), dtype=np.float32)}
                  for i in range(4)]
        merged = tier.aggregate(["c0", "c1", "c2", "c3"], deltas,
                                weights=None, version=0)
        report = tier.pop_report()
        assert report.crashes == 2
        assert report.updates_lost == 2  # the admitted cohort is refunded
        np.testing.assert_array_equal(merged["w"], np.full(4, 2.5))


@pytest.mark.slow
class TestCrashMatrix:
    """Nightly kill-at-every-boundary sweep over the multi-tier tree:
    whichever server dies at whichever update, under either async drop
    policy, the run always completes all its server updates with
    staleness inside the replication bound."""

    ROUNDS = 4

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("drop_policy", ["requeue", "admit_stale"])
    @pytest.mark.parametrize("target", ["root", "edge:Utah"])
    @pytest.mark.parametrize("kill_at", range(ROUNDS))
    def test_kill_at_every_boundary(self, kill_at, target, drop_policy, seed):
        photon = make_photon(
            mode="async", rounds=self.ROUNDS, seed=seed, tiers=2,
            crashes={(kill_at, target)}, replicas=1,
            deadline=2.0, drop_policy=drop_policy)
        history = photon.train()
        assert len(history) == self.ROUNDS
        result = photon.result()
        if target == "root":
            assert result.server_crashes == 1
            assert result.server_updates_lost <= 1  # replicate_every=1
            assert result.edge_crashes == 0
        else:
            assert result.edge_crashes == 1
            assert result.edge_updates_lost == 0  # replicated tier
            assert result.server_crashes == 0
