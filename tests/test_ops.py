"""Fused op correctness: softmax, layer norm, cross entropy, embedding,
dropout — values against NumPy references and gradients against finite
differences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, cross_entropy, dropout, embedding, layer_norm, log_softmax, softmax

from helpers import check_gradients, numeric_grad


class TestSoftmax:
    def test_values_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(2, 5)))
        out = softmax(x).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(2), rtol=1e-6)
        assert (out > 0).all()

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 4))
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_large_values_stable(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        out = softmax(x).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0, :2], [0.5, 0.5], rtol=1e-5)

    def test_gradients(self, rng):
        x = rng.normal(size=(2, 4))
        weights = Tensor(rng.normal(size=(2, 4)))
        check_gradients(lambda t: softmax(t) * weights, [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 6)))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), rtol=1e-5, atol=1e-6
        )

    def test_log_softmax_gradients(self, rng):
        x = rng.normal(size=(2, 5))
        weights = Tensor(rng.normal(size=(2, 5)))
        check_gradients(lambda t: log_softmax(t) * weights, [x])


class TestLayerNorm:
    def test_normalizes(self, rng):
        d = 8
        x = Tensor(rng.normal(2.0, 3.0, size=(4, d)))
        gamma, beta = Tensor(np.ones(d)), Tensor(np.zeros(d))
        out = layer_norm(x, gamma, beta).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_affine_params_applied(self, rng):
        d = 4
        x = Tensor(rng.normal(size=(2, d)))
        gamma = Tensor(np.full(d, 2.0))
        beta = Tensor(np.full(d, 0.5))
        plain = layer_norm(x, Tensor(np.ones(d)), Tensor(np.zeros(d))).data
        scaled = layer_norm(x, gamma, beta).data
        np.testing.assert_allclose(scaled, 2.0 * plain + 0.5, rtol=1e-5, atol=1e-6)

    def test_gradients_all_inputs(self, rng):
        d = 6
        x = rng.normal(size=(3, d))
        gamma = rng.uniform(0.5, 1.5, size=d)
        beta = rng.normal(size=d)
        check_gradients(lambda a, g, b: layer_norm(a, g, b), [x, gamma, beta])


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(2, 3, 5)).astype(np.float32)
        targets = rng.integers(0, 5, size=(2, 3))
        loss = cross_entropy(Tensor(logits), targets).item()
        # Manual reference.
        flat = logits.reshape(-1, 5)
        shifted = flat - flat.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(6), targets.reshape(-1)].mean()
        np.testing.assert_allclose(loss, expected, rtol=1e-5)

    def test_uniform_logits_give_log_vocab(self):
        vocab = 7
        logits = Tensor(np.zeros((1, 4, vocab)))
        targets = np.zeros((1, 4), dtype=np.int64)
        loss = cross_entropy(logits, targets).item()
        np.testing.assert_allclose(loss, np.log(vocab), rtol=1e-6)

    def test_ignore_index_excluded(self, rng):
        logits = rng.normal(size=(1, 4, 5)).astype(np.float32)
        targets = np.array([[1, 2, -100, -100]])
        loss_masked = cross_entropy(Tensor(logits), targets).item()
        loss_two = cross_entropy(Tensor(logits[:, :2]), targets[:, :2]).item()
        np.testing.assert_allclose(loss_masked, loss_two, rtol=1e-5)

    def test_all_ignored_raises(self):
        logits = Tensor(np.zeros((1, 2, 3)))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.array([[-100, -100]]))

    def test_gradient_matches_finite_differences(self, rng):
        logits = rng.normal(size=(2, 2, 4))
        targets = rng.integers(0, 4, size=(2, 2))
        t = Tensor(logits, requires_grad=True)
        cross_entropy(t, targets).backward()

        def f(raw):
            return cross_entropy(Tensor(raw), targets).data

        expected = numeric_grad(lambda raw: f(raw), [logits], 0)
        np.testing.assert_allclose(t.grad, expected, atol=1e-3, rtol=1e-2)

    def test_gradient_sums_to_zero_per_token(self, rng):
        """Softmax-minus-onehot rows sum to zero."""
        logits = Tensor(rng.normal(size=(1, 3, 6)), requires_grad=True)
        targets = rng.integers(0, 6, size=(1, 3))
        cross_entropy(logits, targets).backward()
        np.testing.assert_allclose(
            logits.grad.sum(axis=-1), np.zeros((1, 3)), atol=1e-6
        )


class TestEmbedding:
    def test_lookup_values(self, rng):
        weight = Tensor(rng.normal(size=(10, 4)), requires_grad=True)
        idx = np.array([[1, 3], [3, 9]])
        out = embedding(weight, idx)
        np.testing.assert_allclose(out.data, weight.data[idx])

    def test_gradient_scatter_adds_duplicates(self, rng):
        weight = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([2, 2, 4])
        embedding(weight, idx).sum().backward()
        expected = np.zeros((5, 3), dtype=np.float32)
        expected[2] = 2.0  # two lookups of row 2
        expected[4] = 1.0
        np.testing.assert_allclose(weight.grad, expected)


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_p_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert dropout(x, 0.0, np.random.default_rng(0), training=True) is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, np.random.default_rng(0), training=True)
        np.testing.assert_allclose(out.data.mean(), 1.0, atol=0.02)

    def test_invalid_probability_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(ValueError):
            dropout(x, 1.0, np.random.default_rng(0), training=True)

    def test_gradient_uses_same_mask(self):
        x = Tensor(np.ones((8, 8)), requires_grad=True)
        out = dropout(x, 0.5, np.random.default_rng(1), training=True)
        out.sum().backward()
        # Gradient equals the mask applied in forward.
        np.testing.assert_allclose(x.grad, out.data)


class TestPropertyBased:
    @given(st.integers(2, 8), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_softmax_rows_are_distributions(self, rows, cols):
        rng = np.random.default_rng(rows * 100 + cols)
        out = softmax(Tensor(rng.normal(size=(rows, cols)))).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(rows), rtol=1e-5)
        assert (out >= 0).all()

    @given(st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_cross_entropy_nonnegative(self, vocab):
        rng = np.random.default_rng(vocab)
        logits = Tensor(rng.normal(size=(1, 3, vocab)))
        targets = rng.integers(0, vocab, size=(1, 3))
        assert cross_entropy(logits, targets).item() >= 0.0


class TestFiniteDifferenceSweep:
    """Every fused op in ``repro.tensor.ops`` checked against central
    finite differences on several shapes — the property the hand-derived
    backward passes must satisfy."""

    @pytest.mark.parametrize("shape", [(3,), (2, 5), (2, 3, 4)])
    def test_softmax(self, rng, shape):
        x = rng.normal(size=shape)
        weights = Tensor(rng.normal(size=shape))
        check_gradients(lambda t: softmax(t) * weights, [x])

    @pytest.mark.parametrize("shape", [(4,), (3, 4), (2, 2, 5)])
    def test_log_softmax(self, rng, shape):
        x = rng.normal(size=shape)
        weights = Tensor(rng.normal(size=shape))
        check_gradients(lambda t: log_softmax(t) * weights, [x])

    @pytest.mark.parametrize("batch,seq,vocab", [(1, 4, 6), (2, 3, 5)])
    def test_cross_entropy(self, rng, batch, seq, vocab):
        logits = rng.normal(size=(batch, seq, vocab))
        targets = rng.integers(0, vocab, size=(batch, seq))
        check_gradients(lambda t: cross_entropy(t, targets), [logits])

    def test_cross_entropy_ignore_index(self, rng):
        vocab = 6
        logits = rng.normal(size=(2, 4, vocab))
        targets = rng.integers(0, vocab, size=(2, 4))
        targets[0, 1] = -100
        targets[1, 3] = -100
        check_gradients(lambda t: cross_entropy(t, targets, ignore_index=-100),
                        [logits])
        # Ignored positions must receive exactly zero gradient.
        t = Tensor(logits, requires_grad=True)
        cross_entropy(t, targets, ignore_index=-100).backward()
        np.testing.assert_array_equal(t.grad[0, 1], np.zeros(vocab))
        np.testing.assert_array_equal(t.grad[1, 3], np.zeros(vocab))

    @pytest.mark.parametrize("shape", [(3, 6), (2, 2, 4)])
    def test_layer_norm_all_operands(self, rng, shape):
        d = shape[-1]
        x = rng.normal(size=shape)
        gamma = rng.uniform(0.5, 1.5, size=d)
        beta = rng.normal(size=d)
        check_gradients(lambda a, g, b: layer_norm(a, g, b), [x, gamma, beta])

    def test_embedding(self, rng):
        weight = rng.normal(size=(7, 4))
        idx = np.array([[0, 2, 2], [6, 1, 2]])
        scale = Tensor(rng.normal(size=(2, 3, 4)))
        check_gradients(lambda w: embedding(w, idx) * scale, [weight])

    def test_dropout(self, rng):
        x = rng.normal(size=(4, 5))
        # A fresh generator with a fixed seed per evaluation keeps the
        # mask identical across the finite-difference probes.
        check_gradients(
            lambda t: dropout(t, 0.4, np.random.default_rng(11), training=True),
            [x],
        )
