"""Topology auto-selection and run reporting."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.net import TopologyRequirements, select_topology
from repro.utils import (
    History,
    RoundRecord,
    format_markdown,
    history_to_dict,
    save_report,
)


class TestTopologySelection:
    def test_unconstrained_picks_rar_at_scale(self):
        """With one shared bandwidth, RAR is cheapest for large K."""
        name, cost = select_topology(clients=16, model_mb=250.0,
                                     bandwidth_mbps=312.0)
        assert name == "rar"
        assert cost > 0

    def test_privacy_forces_ps(self):
        name, _ = select_topology(
            clients=8, model_mb=250.0, bandwidth_mbps=312.0,
            requirements=TopologyRequirements(privacy_restricted=True),
        )
        assert name == "ps"

    def test_dropouts_exclude_rar(self):
        name, _ = select_topology(
            clients=16, model_mb=250.0, bandwidth_mbps=312.0,
            requirements=TopologyRequirements(dropouts_expected=True),
        )
        assert name in ("ps", "ar")

    def test_per_topology_bandwidths(self):
        """A fast PS uplink can beat RAR over a slow ring — the
        Figure 2 trade-off."""
        name, _ = select_topology(
            clients=2, model_mb=250.0,
            bandwidth_mbps={"ps": 10_000.0, "ar": 10.0, "rar": 10.0},
        )
        assert name == "ps"

    def test_missing_bandwidth_entries_skipped(self):
        name, _ = select_topology(clients=4, model_mb=100.0,
                                  bandwidth_mbps={"ar": 100.0})
        assert name == "ar"

    def test_validation(self):
        with pytest.raises(ValueError):
            select_topology(0, 100.0, 100.0)
        with pytest.raises(ValueError):
            select_topology(4, 100.0, {},
                            requirements=TopologyRequirements())

    def test_admissible_sets(self):
        assert TopologyRequirements(privacy_restricted=True).admissible() == ("ps",)
        assert "rar" not in TopologyRequirements(dropouts_expected=True).admissible()
        assert len(TopologyRequirements().admissible()) == 3


class TestReporting:
    def make_history(self, n=3):
        history = History()
        for i in range(n):
            history.append(RoundRecord(
                round_idx=i, val_perplexity=30.0 - 5 * i,
                train_loss=float(np.log(30.0 - 5 * i)),
                clients=["c0", "c1"], comm_bytes_up=1000,
                comm_bytes_down=2000, wall_time_s=12.5,
            ))
        return history

    def test_dict_structure(self):
        doc = history_to_dict(self.make_history(), metadata={"model": "tiny"})
        assert doc["metadata"]["model"] == "tiny"
        assert doc["summary"]["rounds"] == 3
        assert doc["summary"]["best_val_perplexity"] == 20.0
        assert doc["summary"]["total_comm_bytes"] == 9000
        assert len(doc["rounds"]) == 3
        json.dumps(doc)  # must be JSON-serializable

    def test_nan_perplexity_becomes_null(self):
        history = History()
        history.append(RoundRecord(0, float("nan"), 1.0, ["c0"]))
        doc = history_to_dict(history)
        assert doc["rounds"][0]["val_perplexity"] is None
        json.dumps(doc)

    def test_markdown_contains_rows(self):
        md = format_markdown(self.make_history(), title="Demo")
        assert md.startswith("# Demo")
        assert sum(line.startswith("| 2 |") for line in md.splitlines()) == 1
        assert "**20.00**" in md

    def test_markdown_omits_ledger_when_clean(self):
        """An undisturbed run keeps the compact table — no ledger
        columns, no ledger summary line."""
        md = format_markdown(self.make_history())
        assert "salvaged" not in md
        assert "Deadline ledger" not in md

    def test_markdown_surfaces_drop_ledger(self):
        """Runs with deadline activity grow dropped/salvaged/late
        columns and a totals line (the ROADMAP follow-up: the JSON
        report had the ledger, the md table did not)."""
        history = self.make_history()
        history.records[1].dropped_steps = 8
        history.records[1].dropped_bytes = 4096
        history.records[2].salvaged_steps = 5
        history.records[2].deadline_misses = 1
        md = format_markdown(history)
        header = md.splitlines()[2]
        assert "dropped | salvaged | late |" in header
        assert "| 8 | 0 | 0 |" in md  # round 1's ledger cells
        assert "| 0 | 5 | 1 |" in md  # round 2's ledger cells
        assert "Deadline ledger: 8 steps dropped, 5 salvaged, 1 late" in md
        doc = history_to_dict(history)
        assert doc["summary"]["total_salvaged_steps"] == 5
        assert doc["rounds"][2]["salvaged_steps"] == 5

    def test_save_writes_json_and_md(self, tmp_path):
        path = save_report(self.make_history(), tmp_path / "run.json",
                           metadata={"k": 1})
        assert path.exists()
        assert path.with_suffix(".md").exists()
        loaded = json.loads(path.read_text())
        assert loaded["metadata"]["k"] == 1

    def test_markdown_metadata_footer(self, tmp_path):
        """Run provenance (e.g. the round a crash-recovered run
        resumed from) rides the markdown artifact as a footer."""
        md = format_markdown(self.make_history(),
                             metadata={"resumed_from_round": 2,
                                       "seed": 0})
        assert "Run metadata: resumed_from_round=2, seed=0." in md
        assert "Run metadata" not in format_markdown(self.make_history())
        path = save_report(self.make_history(), tmp_path / "run.json",
                           metadata={"resumed_from_round": 2})
        assert "resumed_from_round=2" in path.with_suffix(".md").read_text()
