"""Fault injection, dropout policies, the federation simulator,
gradient accumulation, noise scale, memory model, async checkpoints."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ModelConfig, OptimConfig
from repro.data import CachedTokenStream, SyntheticC4
from repro.fed import (
    Aggregator,
    CheckpointManager,
    ClientFailure,
    FailureModel,
    FaultPolicy,
    LLMClient,
)
from repro.net import ClientProfile, FederationSimulator
from repro.nn import DecoderLM
from repro.optim import (
    SGD,
    ConstantLR,
    GradientAccumulator,
    gradient_noise_scale,
    measure_noise_scale,
)
from repro.parallel import ClientMemoryModel

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32, seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64, batch_size=4,
                    weight_decay=0.0)


def make_stream(shard=0, batch=4, seed=0):
    c4 = SyntheticC4(num_shards=4, vocab=CFG.vocab_size, seed=1)
    return CachedTokenStream(c4.shard(shard), batch_size=batch, seq_len=CFG.seq_len,
                             cache_tokens=2048, seed=seed)


def make_aggregator(n_clients=3, **kwargs):
    clients = {
        f"c{i}": LLMClient(f"c{i}", CFG, make_stream(shard=i, seed=i),
                           OPTIM, ConstantLR(3e-3))
        for i in range(n_clients)
    }
    c4 = SyntheticC4(num_shards=4, vocab=CFG.vocab_size, seed=1)
    val = CachedTokenStream(c4.validation(), batch_size=4, seq_len=CFG.seq_len,
                            cache_tokens=2048, seed=99)
    return Aggregator(CFG, clients, val_stream=val, **kwargs)


class TestFailureModel:
    def test_scripted_failure_fires_once(self):
        model = FailureModel(scripted={(0, "c1")})
        assert model.should_fail("c1", 0)
        assert not model.should_fail("c1", 1)
        assert not model.should_fail("c0", 0)

    def test_max_failures_cap(self):
        model = FailureModel(crash_prob=0.999, max_failures=2, seed=0)
        fails = sum(model.should_fail(f"c{i}", 0) for i in range(10))
        assert fails == 2

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FailureModel(crash_prob=1.0)

    def test_random_rate_approximates_probability(self):
        model = FailureModel(crash_prob=0.3, seed=0)
        rate = np.mean([model.should_fail("c", r) for r in range(500)])
        assert 0.2 < rate < 0.4


class TestFaultPolicy:
    def test_topology_defaults(self):
        assert FaultPolicy.for_topology("ps").mode == "partial"
        assert FaultPolicy.for_topology("ar").mode == "partial"
        assert FaultPolicy.for_topology("rar").mode == "retry_round"
        with pytest.raises(ValueError):
            FaultPolicy.for_topology("mesh")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(mode="ignore")
        with pytest.raises(ValueError):
            FaultPolicy(min_survivors=0)


class TestAggregatorFaults:
    def test_partial_aggregates_survivors(self):
        agg = make_aggregator(
            failure_model=FailureModel(scripted={(0, "c1")}),
            fault_policy=FaultPolicy(mode="partial"),
        )
        record = agg.run_round(0, 2)
        assert record.failed_clients == ["c1"]
        assert set(record.clients) == {"c0", "c2"}
        assert record.retries == 0

    def test_retry_round_reruns_cohort(self):
        # c1 fails only in the first attempt (scripted on round 0,
        # fires once), so the retry succeeds with everyone.
        agg = make_aggregator(
            failure_model=FailureModel(scripted={(0, "c1")}),
            fault_policy=FaultPolicy(mode="retry_round", max_retries=2),
        )
        record = agg.run_round(0, 1)
        assert record.retries == 1
        assert set(record.clients) == {"c0", "c1", "c2"}
        assert record.failed_clients == []

    def test_strict_raises(self):
        agg = make_aggregator(
            failure_model=FailureModel(scripted={(0, "c0")}),
            fault_policy=FaultPolicy(mode="strict"),
        )
        with pytest.raises(ClientFailure):
            agg.run_round(0, 1)

    def test_min_survivors_forces_retry(self):
        # Both non-failing rounds need >= 3 survivors; first attempt
        # loses c1, triggering a retry that succeeds.
        agg = make_aggregator(
            failure_model=FailureModel(scripted={(0, "c1")}),
            fault_policy=FaultPolicy(mode="partial", min_survivors=3,
                                     max_retries=2),
        )
        record = agg.run_round(0, 1)
        assert record.retries == 1
        assert len(record.clients) == 3

    def test_retry_walltime_penalty(self):
        from repro.config import WallTimeConfig
        from repro.net import WallTimeModel

        wt = WallTimeModel(WallTimeConfig(throughput=2.0, bandwidth_mbps=1000.0,
                                          model_mb=0.1))
        agg = make_aggregator(
            failure_model=FailureModel(scripted={(0, "c1")}),
            fault_policy=FaultPolicy(mode="retry_round", max_retries=2),
            walltime=wt,
        )
        record = agg.run_round(0, 2)
        single = wt.round_timing("rar", 3, 2).total_s
        assert record.wall_time_s == pytest.approx(2 * single)

    def test_training_converges_through_failures(self):
        agg = make_aggregator(
            failure_model=FailureModel(crash_prob=0.2, seed=3),
            fault_policy=FaultPolicy(mode="partial"),
        )
        history = agg.run(rounds=4, local_steps=8)
        assert history.val_perplexities[-1] < history.val_perplexities[0]


class TestFederationSimulator:
    def profiles(self, n=4, nu=2.0, jitter=0.0):
        return [ClientProfile(f"c{i}", throughput=nu, jitter=jitter)
                for i in range(n)]

    def test_homogeneous_matches_analytic(self):
        sim = FederationSimulator(self.profiles(), model_mb=100.0,
                                  bandwidth_mbps=100.0, topology="rar")
        report = sim.simulate(rounds=5, local_steps=64)
        from repro.config import WallTimeConfig
        from repro.net import WallTimeModel

        wt = WallTimeModel(WallTimeConfig(throughput=2.0, bandwidth_mbps=100.0,
                                          model_mb=100.0))
        expected = wt.total_wall_time_s("rar", 4, 64, rounds=5)
        assert report.total_wall_s == pytest.approx(expected)

    def test_straggler_slows_rounds(self):
        fast = FederationSimulator(self.profiles(), 10.0, 100.0)
        slow_profiles = self.profiles()[:3] + [ClientProfile("slow", throughput=0.5)]
        slow = FederationSimulator(slow_profiles, 10.0, 100.0)
        assert (slow.simulate(3, 32).total_wall_s
                > fast.simulate(3, 32).total_wall_s * 2)

    def test_deadline_drops_stragglers(self):
        profiles = self.profiles()[:3] + [ClientProfile("slow", throughput=0.1)]
        sim = FederationSimulator(profiles, 10.0, 100.0, deadline_factor=1.5)
        report = sim.simulate(rounds=4, local_steps=32)
        assert report.drop_counts().get("slow", 0) == 4
        # Rounds barrier on the fast cohort, not the straggler.
        assert all(e.barrier_s < 32 / 0.1 for e in report.events)

    def test_deadline_keeps_at_least_one(self):
        profiles = [ClientProfile("a", 1.0), ClientProfile("b", 100.0)]
        sim = FederationSimulator(profiles, 10.0, 100.0, deadline_factor=1.0)
        report = sim.simulate(rounds=2, local_steps=16)
        assert all(e.participants for e in report.events)

    def test_overlap_reduces_wall_time(self):
        plain = FederationSimulator(self.profiles(), 1000.0, 10.0)
        overlapped = FederationSimulator(self.profiles(), 1000.0, 10.0,
                                         overlap=True)
        assert (overlapped.simulate(3, 16).total_wall_s
                < plain.simulate(3, 16).total_wall_s)

    def test_utilization_bounded(self):
        sim = FederationSimulator(self.profiles(jitter=0.3), 10.0, 100.0, seed=1)
        report = sim.simulate(rounds=5, local_steps=32)
        for value in report.utilization().values():
            assert 0.0 < value <= 1.0

    def test_uptime_drops_clients(self):
        profiles = [ClientProfile(f"c{i}", 2.0, uptime=0.5) for i in range(4)]
        sim = FederationSimulator(profiles, 10.0, 100.0, seed=0)
        report = sim.simulate(rounds=20, local_steps=8)
        sizes = [len(e.participants) for e in report.events]
        assert min(sizes) >= 1
        assert np.mean(sizes) < 4

    def test_validation(self):
        with pytest.raises(ValueError):
            FederationSimulator([], 10.0, 100.0)
        with pytest.raises(ValueError):
            ClientProfile("x", throughput=0.0)
        with pytest.raises(ValueError):
            FederationSimulator(self.profiles(), 10.0, 100.0, deadline_factor=0.5)
        sim = FederationSimulator(self.profiles(), 10.0, 100.0)
        with pytest.raises(ValueError):
            sim.simulate(0, 1)


class TestGradientAccumulation:
    def test_matches_full_batch_step(self):
        model_a = DecoderLM(CFG, seed=0)
        model_b = DecoderLM(CFG, seed=0)
        stream = make_stream(batch=8)
        x, y = stream.next_batch()

        # Full-batch single step.
        opt_a = SGD(model_a.parameters(), lr=0.1)
        acc_a = GradientAccumulator(model_a, opt_a, micro_batches=1, grad_clip=None)
        loss_a = acc_a.step(x, y)

        # Four accumulated micro-batches.
        opt_b = SGD(model_b.parameters(), lr=0.1)
        acc_b = GradientAccumulator(model_b, opt_b, micro_batches=4, grad_clip=None)
        loss_b = acc_b.step(x, y)

        np.testing.assert_allclose(loss_a, loss_b, rtol=1e-4)
        for (_, pa), (_, pb) in zip(model_a.named_parameters(),
                                    model_b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-3, atol=1e-5)

    def test_indivisible_batch_rejected(self):
        model = DecoderLM(CFG, seed=0)
        acc = GradientAccumulator(model, SGD(model.parameters(), lr=0.1), 3)
        stream = make_stream(batch=4)
        with pytest.raises(ValueError):
            acc.step(*stream.next_batch())

    def test_invalid_micro_batches(self):
        model = DecoderLM(CFG, seed=0)
        with pytest.raises(ValueError):
            GradientAccumulator(model, SGD(model.parameters(), lr=0.1), 0)


class TestNoiseScale:
    def test_solver_recovers_known_values(self):
        # Construct measurements from known |G|^2 = 4, tr(Σ) = 100.
        grad_sq, trace = 4.0, 100.0
        small = grad_sq + trace / 2
        big = grad_sq + trace / 32
        est = gradient_noise_scale(small, big, small_batch=2, big_batch=32)
        assert est.grad_sq_norm == pytest.approx(grad_sq, rel=1e-6)
        assert est.trace_sigma == pytest.approx(trace, rel=1e-6)
        assert est.noise_scale == pytest.approx(25.0, rel=1e-6)

    def test_efficiency_curve(self):
        est = gradient_noise_scale(54.0, 7.125, 2, 32)  # B_noise = 25
        assert est.efficiency_at(25) == pytest.approx(0.5)
        assert est.efficiency_at(1) < est.efficiency_at(100)

    def test_measured_on_model_is_positive(self):
        model = DecoderLM(CFG, seed=0)
        stream = make_stream(batch=16)
        est = measure_noise_scale(model, stream, small_batch=2, big_batch=16,
                                  n_estimates=3)
        assert est.noise_scale > 0
        assert np.isfinite(est.noise_scale)

    def test_validation(self):
        with pytest.raises(ValueError):
            gradient_noise_scale(1.0, 1.0, 4, 4)
        model = DecoderLM(CFG, seed=0)
        with pytest.raises(ValueError):
            measure_noise_scale(model, make_stream(batch=4), 2, 16)

    @given(st.floats(0.1, 10.0), st.floats(1.0, 1000.0))
    @settings(max_examples=20, deadline=None)
    def test_solver_inverse_property(self, grad_sq, trace):
        small = grad_sq + trace / 4
        big = grad_sq + trace / 64
        est = gradient_noise_scale(small, big, 4, 64)
        assert est.grad_sq_norm == pytest.approx(grad_sq, rel=1e-4)
        assert est.trace_sigma == pytest.approx(trace, rel=1e-4)


class TestMemoryModel:
    def test_sharing_factor_approaches_workers_plus_one(self):
        model = ClientMemoryModel(model_bytes=10**12, n_workers=7,
                                  process_overhead=0)
        assert model.sharing_factor() == pytest.approx(8.0)

    def test_paper_8x_claim_band(self):
        # 7B bf16 params (~14 GB) staged for 8 workers: the shared
        # segment saves close to the paper's "up to 8x".
        model = ClientMemoryModel(model_bytes=14 * 2**30, n_workers=8)
        assert model.sharing_factor() > 8.0

    def test_footprints_ordered(self):
        model = ClientMemoryModel(model_bytes=2**30, n_workers=4)
        assert (model.footprint(True).total_bytes
                < model.footprint(False).total_bytes)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientMemoryModel(model_bytes=0, n_workers=1)


class TestAsyncCheckpointing:
    def test_async_save_visible_after_wait(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        state = {"w": np.arange(4, dtype=np.float32)}
        manager.save_async(0, state)
        manager.wait()
        step, loaded, _ = manager.load()
        assert step == 0
        np.testing.assert_array_equal(loaded["w"], state["w"])

    def test_snapshot_isolated_from_mutation(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        state = {"w": np.zeros(4, dtype=np.float32)}
        manager.save_async(0, state)
        state["w"] += 99.0  # mutate the live model immediately
        manager.wait()
        _, loaded, _ = manager.load()
        np.testing.assert_array_equal(loaded["w"], np.zeros(4))

    def test_many_async_saves_rotate(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in range(5):
            manager.save_async(step, {"w": np.full(2, float(step), dtype=np.float32)})
        manager.wait()
        assert manager.list_checkpoints() == [3, 4]
