"""Multi-tenant serving: batched adapter engine, cache, replayer —
plus regressions for the LoRA-era inference and personalization bugs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, OptimConfig
from repro.data import CachedTokenStream, SyntheticC4
from repro.fed import personalize
from repro.nn import (
    DecoderLM,
    InferenceEngine,
    apply_lora,
    load_lora_state_dict,
    lora_state_dict,
    merge_lora,
)
from repro.obs import MeterRegistry, Tracer
from repro.serve import (
    Adapter,
    AdapterCache,
    MultiAdapterEngine,
    RequestReplayer,
    StaleAdapterError,
    SyntheticTrace,
    synthetic_adapter,
)

CFG = ModelConfig("micro", n_blocks=2, d_model=16, n_heads=2, vocab_size=32,
                  seq_len=24)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64,
                    batch_size=4, weight_decay=0.0)
RANK = 2
VERSION = 5


def make_stream(batch=4, seed=0):
    c4 = SyntheticC4(num_shards=2, vocab=CFG.vocab_size, seed=1)
    return CachedTokenStream(c4.shard(0), batch_size=batch,
                             seq_len=CFG.seq_len, cache_tokens=2048, seed=seed)


@pytest.fixture(scope="module")
def base_model():
    return DecoderLM(CFG, seed=0)


@pytest.fixture(scope="module")
def template():
    probe = DecoderLM(CFG, seed=0)
    apply_lora(probe, rank=RANK, seed=1)
    return lora_state_dict(probe)


def make_adapter(template, user, version=VERSION, **kw):
    return synthetic_adapter(template, user, version, **kw)


def merged_reference(adapter):
    """The sequential path: fold the adapter densely, one engine per
    request (what serving replaces)."""
    model = DecoderLM(CFG, seed=0)
    apply_lora(model, rank=RANK, seed=1)
    names = ("qkv", "proj", "up", "down")
    load_lora_state_dict(model, {
        f"lora{i}.{names[i % 4]}.{part}": arr
        for i, pair in enumerate(adapter.pairs)
        for part, arr in zip("ab", pair)
    })
    merge_lora(model)
    return InferenceEngine(model)


class TestAdapter:
    def test_from_state_dict_roundtrip(self, template):
        adapter = Adapter.from_state_dict("u", template, 3)
        assert adapter.n_slots == 4 * CFG.n_blocks
        assert adapter.rank == RANK
        assert adapter.base_version == 3
        assert adapter.nbytes == sum(v.nbytes for v in template.values())

    def test_scaling_is_alpha_over_rank(self, template):
        adapter = Adapter.from_state_dict("u", template, 0, alpha=16.0)
        assert adapter.scaling(0) == pytest.approx(16.0 / RANK)

    def test_malformed_state_rejected(self, template):
        with pytest.raises(ValueError):
            Adapter.from_state_dict("u", {}, 0)
        bad = dict(template)
        del bad["lora0.qkv.a"]
        bad["lora99.qkv.a"] = np.zeros((4, 2))
        with pytest.raises(ValueError):
            Adapter.from_state_dict("u", bad, 0)

    def test_synthetic_adapter_deterministic(self, template):
        a1 = make_adapter(template, 3, seed=9)
        a2 = make_adapter(template, 3, seed=9)
        other = make_adapter(template, 4, seed=9)
        for (x1, y1), (x2, y2) in zip(a1.pairs, a2.pairs):
            np.testing.assert_array_equal(x1, x2)
            np.testing.assert_array_equal(y1, y2)
        assert any(not np.array_equal(p1[0], p2[0])
                   for p1, p2 in zip(a1.pairs, other.pairs))


class TestMultiAdapterEngine:
    def test_batched_matches_sequential_merge(self, base_model, template, rng):
        """The core guarantee: K-stream factored serving equals
        per-request merge-and-decode, request by request."""
        engine = MultiAdapterEngine(base_model, base_version=VERSION,
                                    max_streams=3)
        requests = {
            f"r{u}": (make_adapter(template, u),
                      rng.integers(2, CFG.vocab_size, size=4 + u))
            for u in range(3)
        }
        batched = engine.generate_batch(requests, max_new_tokens=8)
        for rid, (adapter, prompt) in requests.items():
            reference = merged_reference(adapter).generate(
                prompt, max_new_tokens=8, temperature=0.0)
            np.testing.assert_array_equal(batched[rid], reference)

    def test_batched_logits_close_to_merged(self, base_model, template, rng):
        engine = MultiAdapterEngine(base_model, base_version=VERSION,
                                    max_streams=2)
        adapter = make_adapter(template, 0)
        prompt = rng.integers(2, CFG.vocab_size, size=6)
        engine.open("r", adapter)
        factored = engine.prefill("r", prompt)
        merged = merged_reference(adapter).prefill(prompt)
        np.testing.assert_allclose(factored, merged, rtol=1e-4, atol=1e-4)

    def test_shared_adapter_rows_grouped(self, base_model, template, rng):
        """Two requests from the same tenant share one adapter group
        and still decode exactly like separate merged engines."""
        engine = MultiAdapterEngine(base_model, base_version=VERSION,
                                    max_streams=2)
        adapter = make_adapter(template, 7)
        p1 = rng.integers(2, CFG.vocab_size, size=5)
        p2 = rng.integers(2, CFG.vocab_size, size=8)
        out = engine.generate_batch(
            {"a": (adapter, p1), "b": (adapter, p2)}, max_new_tokens=6)
        ref = merged_reference(adapter)
        np.testing.assert_array_equal(
            out["a"], ref.generate(p1, max_new_tokens=6, temperature=0.0))
        np.testing.assert_array_equal(
            out["b"], ref.generate(p2, max_new_tokens=6, temperature=0.0))

    def test_no_adapter_matches_base_engine(self, base_model, rng):
        engine = MultiAdapterEngine(base_model, max_streams=1)
        prompt = rng.integers(2, CFG.vocab_size, size=6)
        out = engine.generate_batch({"r": (None, prompt)}, max_new_tokens=8)
        ref = InferenceEngine(base_model).generate(prompt, max_new_tokens=8,
                                                   temperature=0.0)
        np.testing.assert_array_equal(out["r"], ref)

    def test_stale_adapter_rejected(self, base_model, template):
        engine = MultiAdapterEngine(base_model, base_version=VERSION)
        stale = make_adapter(template, 0, version=VERSION - 1)
        with pytest.raises(StaleAdapterError):
            engine.open("r", stale)
        assert engine.active == 0

    def test_shape_mismatch_rejected(self, base_model, template):
        engine = MultiAdapterEngine(base_model, base_version=VERSION)
        adapter = make_adapter(template, 0)
        wrong = Adapter(adapter.adapter_id, adapter.base_version,
                        adapter.alpha, adapter.pairs[:4])
        with pytest.raises(ValueError):
            engine.open("r", wrong)

    def test_stream_lifecycle(self, base_model, template, rng):
        engine = MultiAdapterEngine(base_model, base_version=VERSION,
                                    max_streams=1)
        engine.open("r", make_adapter(template, 0))
        with pytest.raises(ValueError):
            engine.open("r", None)  # duplicate id
        with pytest.raises(RuntimeError):
            engine.open("r2", None)  # over capacity
        engine.close("r")
        with pytest.raises(KeyError):
            engine.close("r")
        engine.open("r2", None)  # slot freed
        with pytest.raises(KeyError):
            engine.prefill("ghost", rng.integers(0, CFG.vocab_size, size=3))

    def test_lora_wrapped_base_rejected(self):
        model = DecoderLM(CFG, seed=0)
        apply_lora(model, rank=RANK)
        with pytest.raises(ValueError):
            MultiAdapterEngine(model)

    def test_snapshot_isolated_from_training(self, base_model, template, rng):
        """Mutating the live model after engine construction must not
        change what the engine serves."""
        model = DecoderLM(CFG, seed=3)
        engine = MultiAdapterEngine(model, base_version=VERSION)
        prompt = rng.integers(2, CFG.vocab_size, size=5)
        engine.open("r", make_adapter(template, 0))
        before = engine.prefill("r", prompt).copy()
        for p in model.parameters():
            p.data += 1.0
        engine.close("r")
        engine.open("r", make_adapter(template, 0))
        np.testing.assert_array_equal(engine.prefill("r", prompt), before)


class TestAdapterCache:
    def test_lru_eviction_order(self, template):
        cache = AdapterCache(capacity=2)
        for user in range(3):
            cache.put(make_adapter(template, user))
        assert "user0" not in cache
        assert "user1" in cache and "user2" in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self, template):
        cache = AdapterCache(capacity=2)
        cache.put(make_adapter(template, 0))
        cache.put(make_adapter(template, 1))
        cache.get("user0", base_version=VERSION)
        cache.put(make_adapter(template, 2))
        assert "user0" in cache and "user1" not in cache

    def test_pinned_never_evicted(self, template):
        """Satellite guarantee: eviction pressure cannot remove an
        adapter an in-flight request holds pinned."""
        cache = AdapterCache(capacity=1)
        cache.put(make_adapter(template, 0), pin=True)
        for user in range(1, 5):
            cache.put(make_adapter(template, user))
        assert "user0" in cache
        cache.unpin("user0")
        cache.put(make_adapter(template, 9))
        assert "user0" not in cache

    def test_put_pin_survives_fully_pinned_cache(self, template):
        """An admission into a cache whose whole capacity is pinned
        must not evict its own adapter (it rides over capacity)."""
        cache = AdapterCache(capacity=2)
        cache.put(make_adapter(template, 0), pin=True)
        cache.put(make_adapter(template, 1), pin=True)
        cache.put(make_adapter(template, 2), pin=True)
        assert cache.resident == 3  # temporarily over capacity
        cache.unpin("user0")
        cache.unpin("user1")
        cache.unpin("user2")
        assert cache.resident == cache.capacity

    def test_stale_version_is_miss_and_dropped(self, template):
        """Satellite guarantee: a lookup naming the serving base never
        returns an adapter trained against another checkpoint."""
        cache = AdapterCache(capacity=4)
        cache.put(make_adapter(template, 0, version=VERSION - 1))
        assert cache.get("user0", base_version=VERSION) is None
        assert cache.stale_drops == 1
        assert "user0" not in cache  # dropped, forces re-personalization
        # Unversioned lookups still see whatever is resident.
        cache.put(make_adapter(template, 1, version=VERSION - 1))
        assert cache.get("user1") is not None

    def test_pin_requires_residency_and_balances(self, template):
        cache = AdapterCache(capacity=2)
        with pytest.raises(KeyError):
            cache.pin("user0")
        cache.put(make_adapter(template, 0))
        cache.pin("user0")
        cache.pin("user0")
        cache.unpin("user0")
        assert cache.pinned("user0")
        cache.unpin("user0")
        with pytest.raises(KeyError):
            cache.unpin("user0")

    def test_hit_rate_and_bytes(self, template):
        cache = AdapterCache(capacity=2)
        adapter = make_adapter(template, 0)
        cache.put(adapter)
        cache.get("user0", base_version=VERSION)
        cache.get("user1", base_version=VERSION)
        assert cache.hit_rate == pytest.approx(0.5)
        assert cache.resident_bytes == adapter.nbytes

    def test_meters_mirrored(self, template):
        meters = MeterRegistry()
        cache = AdapterCache(capacity=1, meters=meters)
        cache.put(make_adapter(template, 0))
        cache.put(make_adapter(template, 1))
        cache.get("user1", base_version=VERSION)
        cache.get("user0", base_version=VERSION)
        snap = meters.snapshot()
        assert snap["serve/cache_hits"] == 1
        assert snap["serve/cache_misses"] == 1
        assert snap["serve/cache_evictions"] == 1
        assert snap["serve/adapters_resident"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdapterCache(capacity=0)


class TestReplayer:
    def run_replay(self, base_model, template, *, capacity=3, batch=4,
                   n_requests=12, tracer=None, temperature=0.0, seed=0):
        engine = MultiAdapterEngine(base_model, base_version=VERSION,
                                    max_streams=batch, tracer=tracer)
        cache = AdapterCache(capacity,
                             meters=tracer.meters if tracer else None)
        replayer = RequestReplayer(
            engine, cache, lambda u: make_adapter(template, u),
            batch_size=batch, temperature=temperature, seed=seed,
            tracer=tracer)
        trace = SyntheticTrace(n_requests, 5, vocab_size=CFG.vocab_size,
                               seed=0)
        return replayer.run(trace)

    def test_trace_seeded_and_zipf_skewed(self):
        t1 = SyntheticTrace(50, 10, vocab_size=CFG.vocab_size, seed=4)
        t2 = SyntheticTrace(50, 10, vocab_size=CFG.vocab_size, seed=4)
        for r1, r2 in zip(t1, t2):
            assert r1.user_id == r2.user_id
            np.testing.assert_array_equal(r1.prompt, r2.prompt)
        counts = np.bincount([r.user_id for r in t1], minlength=10)
        assert counts[0] > counts[5:].max()  # head user dominates the tail

    def test_replay_deterministic(self, base_model, template):
        """Satellite guarantee: a fixed seed fixes every output token,
        independent of the host's timing."""
        r1 = self.run_replay(base_model, template)
        r2 = self.run_replay(base_model, template)
        assert r1.outputs.keys() == r2.outputs.keys()
        for rid in r1.outputs:
            np.testing.assert_array_equal(r1.outputs[rid], r2.outputs[rid])

    def test_replay_deterministic_when_sampling(self, base_model, template):
        r1 = self.run_replay(base_model, template, temperature=0.9, seed=11)
        r2 = self.run_replay(base_model, template, temperature=0.9, seed=11)
        for rid in r1.outputs:
            np.testing.assert_array_equal(r1.outputs[rid], r2.outputs[rid])

    def test_replay_outputs_match_sequential(self, base_model, template):
        """Every replayed request decodes exactly as its own merged
        engine would have."""
        result = self.run_replay(base_model, template, n_requests=8)
        trace = SyntheticTrace(8, 5, vocab_size=CFG.vocab_size, seed=0)
        for request in trace:
            adapter = make_adapter(template, request.user_id)
            expected = merged_reference(adapter).generate(
                request.prompt, request.max_new_tokens, temperature=0.0)
            np.testing.assert_array_equal(result.outputs[request.request_id],
                                          expected)

    def test_metrics_populated(self, base_model, template):
        result = self.run_replay(base_model, template, n_requests=12)
        assert result.requests == 12
        assert result.waves == 3
        assert result.tokens_out > 0
        assert result.p99_ms >= result.p50_ms > 0
        assert result.tokens_per_s > 0
        assert result.cache_hits + result.cache_misses == 12
        assert 0 < result.cache_hit_rate < 1
        assert result.adapters_resident <= 3
        assert result.adapter_bytes > 0
        assert len(result.latencies_ms) == 12
        d = result.as_dict()
        assert {"p50_ms", "p99_ms", "tokens_per_s", "cache_hit_rate",
                "adapter_bytes"} <= d.keys()

    def test_tracer_spans_and_meters(self, base_model, template, tmp_path):
        tracer = Tracer(tmp_path / "serve.json")
        self.run_replay(base_model, template, tracer=tracer, n_requests=8)
        summary = tracer.summary()
        assert summary["host_spans"] >= 2 * 3 + 8  # wave phases + requests
        meters = summary["meters"]
        assert meters["serve/requests"] == 8
        assert meters["serve/latency_ms"]["count"] == 8
        assert meters["serve/tokens_out"] > 0
        assert tracer.export() is not None

    def test_tracing_does_not_change_outputs(self, base_model, template,
                                             tmp_path):
        plain = self.run_replay(base_model, template)
        traced = self.run_replay(base_model, template,
                                 tracer=Tracer(tmp_path / "t.json"))
        for rid in plain.outputs:
            np.testing.assert_array_equal(plain.outputs[rid],
                                          traced.outputs[rid])

    def test_batch_size_validated(self, base_model, template):
        engine = MultiAdapterEngine(base_model, base_version=VERSION,
                                    max_streams=2)
        cache = AdapterCache(2)
        with pytest.raises(ValueError):
            RequestReplayer(engine, cache, lambda u: None, batch_size=4)


class TestInferenceSnapshotRegressions:
    """The two InferenceEngine construction bugs this PR fixes."""

    def test_engine_accepts_lora_wrapped_model(self, rng):
        """Regression: the dense-block guard evaluated ``qkv.bias`` on
        LoRALinear (no ``bias`` attribute) and crashed with
        AttributeError instead of serving the adapted model."""
        model = DecoderLM(CFG, seed=0)
        apply_lora(model, rank=RANK, seed=1)
        model.blocks._blocks[0].attn.qkv.lora_b.data += 0.05
        engine = InferenceEngine(model)  # used to raise AttributeError
        prompt = rng.integers(2, CFG.vocab_size, size=6)
        expected = model(prompt[None, :]).data[0, -1]
        np.testing.assert_allclose(engine.prefill(prompt), expected,
                                   rtol=1e-4, atol=1e-4)

    def test_lora_engine_matches_merged_engine(self, rng):
        model = DecoderLM(CFG, seed=0)
        apply_lora(model, rank=RANK, seed=1)
        model.blocks._blocks[0].mlp.up.lora_b.data += 0.03
        prompt = rng.integers(2, CFG.vocab_size, size=5)
        direct = InferenceEngine(model).generate(prompt, max_new_tokens=6,
                                                 temperature=0.0)
        merge_lora(model)
        merged = InferenceEngine(model).generate(prompt, max_new_tokens=6,
                                                 temperature=0.0)
        np.testing.assert_array_equal(direct, merged)

    def test_engine_construction_leaves_model_unchanged(self):
        model = DecoderLM(CFG, seed=0)
        apply_lora(model, rank=RANK, seed=1)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        InferenceEngine(model)
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(after[key], before[key])
        assert isinstance(model.blocks._blocks[0].attn.qkv,
                          type(model.blocks._blocks[1].attn.qkv))

    def test_snapshot_not_aliased_to_live_weights(self, rng):
        """Regression: ``_BlockWeights`` kept references to the live
        ``.data`` arrays, so training the model mutated a running
        engine's "snapshot" in place."""
        model = DecoderLM(CFG, seed=0)
        engine = InferenceEngine(model)
        prompt = rng.integers(2, CFG.vocab_size, size=6)
        before = engine.prefill(prompt).copy()
        for p in model.parameters():
            p.data += 0.5  # in-place, the aliasing failure mode
        engine.reset()
        np.testing.assert_array_equal(engine.prefill(prompt), before)

    def test_missing_qkv_still_rejected(self):
        class Fake:
            pass

        model = DecoderLM(CFG, seed=0)
        block = model.blocks._blocks[0]
        orig = block.attn
        block.attn = Fake()
        try:
            with pytest.raises(ValueError):
                InferenceEngine(model)
        finally:
            block.attn = orig


class TestPersonalizeEvalRegression:
    """The eval-stream drift bug this PR fixes."""

    def test_zero_lr_reports_zero_improvement(self):
        """Regression: with the default ``eval_stream = stream``,
        training advanced the shared iterator between the before/after
        readings, so even a no-op fine-tune (lr=0) reported a spurious
        improvement from comparing different batches."""
        model = DecoderLM(CFG, seed=0)
        frozen = OptimConfig(max_lr=0.0, warmup_steps=2, schedule_steps=64,
                             batch_size=4, weight_decay=0.0)
        result = personalize(model.state_dict(), CFG, make_stream(seed=3),
                             steps=5, optim=frozen)
        assert result.ppl_after == pytest.approx(result.ppl_before, rel=1e-6)
        assert result.improvement == pytest.approx(0.0, abs=1e-6)

    def test_eval_stream_position_restored(self):
        model = DecoderLM(CFG, seed=0)
        eval_stream = make_stream(seed=11)
        baseline = eval_stream.state_dict()
        personalize(model.state_dict(), CFG, make_stream(seed=3), steps=3,
                    optim=OPTIM, eval_stream=eval_stream)
        # The after-eval re-read the same batches the before-eval saw:
        # the stream advanced past them exactly once.
        resumed = eval_stream.state_dict()
        assert resumed["tokens_served"] > baseline["tokens_served"]

    def test_non_checkpointable_eval_stream_rejected(self):
        class Plain:
            def next_batch(self):  # pragma: no cover - never reached
                raise AssertionError

        model = DecoderLM(CFG, seed=0)
        with pytest.raises(TypeError):
            personalize(model.state_dict(), CFG, make_stream(seed=3),
                        steps=1, optim=OPTIM, eval_stream=Plain())

    def test_real_finetune_still_improves(self):
        model = DecoderLM(CFG, seed=0)
        result = personalize(model.state_dict(), CFG, make_stream(seed=3),
                             steps=12, optim=OPTIM)
        assert result.ppl_after < result.ppl_before
