"""Client scheduling: selection policies, jittered clocks and
partial-work admission.

The load-bearing regressions: the default ``random`` policy with zero
jitter reproduces the pre-scheduler async trace bit-exactly, ranked
policies stay deterministic for any ``max_workers``, the utility
fairness floor prevents starvation, and ``admit_partial`` conserves
cancelled work (dropped + salvaged = planned steps of every cancelled
cycle).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, main
from repro.config import FedConfig, ModelConfig, OptimConfig, WallTimeConfig
from repro.fed import ClientScheduler, Photon, SELECTION_POLICIES
from repro.net import JitterModel

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32,
                  seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64,
                    batch_size=2, weight_decay=0.0)
WALLTIME = WallTimeConfig(throughput=2.0, bandwidth_mbps=312.5, model_mb=0.05)


def make_photon(*, population=4, rounds=2, local_steps=2, spread=4.0,
                staleness_alpha=0.5, walltime_config=WALLTIME, **kwargs):
    fed_keys = ("deadline", "drop_policy", "adaptive_local_steps",
                "buffer_size", "seed", "selection", "jitter", "exploration",
                "stat_utility_weight")
    fed_kwargs = {k: kwargs.pop(k) for k in fed_keys if k in kwargs}
    fed = FedConfig(population=population, clients_per_round=population,
                    local_steps=local_steps, rounds=rounds, mode="async",
                    staleness_alpha=staleness_alpha, **fed_kwargs)
    if walltime_config is None:
        spread = 1.0
    return Photon(CFG, fed, OPTIM, num_shards=population, val_batches=2,
                  walltime_config=walltime_config, client_speed_spread=spread,
                  **kwargs)


def trace(history):
    return (history.val_perplexities, history.train_losses,
            [r.pseudo_grad_norm for r in history],
            [tuple(r.clients) for r in history])


class TestJitterModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            JitterModel(scale=-0.1)

    def test_scale_zero_is_exact_identity(self):
        """Scale 0 returns exactly 1.0 *without consuming RNG state* —
        the bit-exactness anchor for unjittered runs."""
        jm = JitterModel(scale=0.0, seed=3)
        assert [jm.factor() for _ in range(5)] == [1.0] * 5
        # The underlying stream was never touched.
        assert jm._rng.bit_generator.state == \
            np.random.default_rng(3).bit_generator.state

    def test_seeded_reproducibility(self):
        a = [JitterModel(0.3, seed=7).factor() for _ in range(1)]
        b = [JitterModel(0.3, seed=7).factor() for _ in range(1)]
        assert a == b
        assert JitterModel(0.3, seed=8).factor() != a[0]

    def test_lognormal_positive_median_one(self):
        jm = JitterModel(scale=0.5, seed=0)
        draws = np.array([jm.factor() for _ in range(2000)])
        assert (draws > 0).all()
        assert abs(np.median(np.log(draws))) < 0.05  # median factor ~ 1


class TestSchedulerPolicies:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClientScheduler("banana")
        with pytest.raises(ValueError):
            ClientScheduler("utility", deadline_s=0.0)
        with pytest.raises(ValueError):
            ClientScheduler("utility", exploration=-1.0)
        with pytest.raises(ValueError):
            ClientScheduler("utility", fairness_every_k=0)
        assert set(SELECTION_POLICIES) == {"random", "fastest", "utility"}

    def test_random_replays_fifo_rotation(self):
        """The legacy idle-pool semantics, bit for bit: reachable
        clients dispatch in queue order, unreachable ones rotate to
        the back, the scan stops when the slots are filled."""
        sched = ClientScheduler("random")
        dispatch, leftover = sched.select_async(
            ["a", "b", "c", "d"], {"a", "c", "d"}, 2, 0, lambda c: 1.0)
        assert dispatch == ["a", "c"]
        assert leftover == ["d", "b"]

    def test_random_all_unreachable_keeps_queue(self):
        sched = ClientScheduler("random")
        dispatch, leftover = sched.select_async(
            ["a", "b"], set(), 2, 0, lambda c: 1.0)
        assert dispatch == []
        assert leftover == ["a", "b"]

    def test_fastest_ranks_by_predicted_cycle(self):
        sched = ClientScheduler("fastest")
        durations = {"slow": 9.0, "mid": 3.0, "quick": 1.0}
        dispatch, leftover = sched.select_async(
            ["slow", "mid", "quick"], {"slow", "mid", "quick"}, 2, 0,
            durations.__getitem__)
        assert dispatch == ["quick", "mid"]
        assert leftover == ["slow"]

    def test_utility_skips_deadline_infeasible(self):
        """A client whose predicted cycle exceeds the deadline is not
        dispatched while a feasible alternative exists."""
        sched = ClientScheduler("utility", deadline_s=5.0, exploration=0.0)
        durations = {"doomed": 9.0, "fits": 4.0, "quick": 1.0}
        dispatch, _ = sched.select_async(
            ["doomed", "fits", "quick"], set(durations), 2, 0,
            durations.__getitem__)
        assert dispatch == ["quick", "fits"]
        # With no feasible alternative, the infeasible client still runs
        # (the federation must not stall).
        dispatch, _ = sched.select_async(
            ["doomed"], {"doomed"}, 1, 0, durations.__getitem__)
        assert dispatch == ["doomed"]

    def test_exploration_rotates_slow_clients_in(self):
        """The recency bonus eventually outweighs the speed gap."""
        sched = ClientScheduler("utility", exploration=5.0,
                                fairness_every_k=None)
        durations = {"slow": 4.0, "quick": 1.0}
        fn = durations.__getitem__
        # Fresh state: the quick client wins the single slot.
        dispatch, _ = sched.select_async(["slow", "quick"], set(durations),
                                         1, 0, fn)
        assert dispatch == ["quick"]
        sched.note_selected("quick", 0)
        # As versions pass, the waiting slow client's recency bonus
        # accumulates until it outranks the 4x-faster one.
        chosen = []
        for version in range(1, 7):
            dispatch, _ = sched.select_async(["slow", "quick"],
                                             set(durations), 1, version, fn)
            sched.note_selected(dispatch[0], version)
            chosen.append(dispatch[0])
        assert "slow" in chosen
        # Without exploration the slow client never wins on score.
        greedy = ClientScheduler("utility", exploration=0.0,
                                 fairness_every_k=None)
        greedy.note_selected("quick", 0)
        for version in range(1, 7):
            dispatch, _ = greedy.select_async(["slow", "quick"],
                                              set(durations), 1, version, fn)
            greedy.note_selected(dispatch[0], version)
            assert dispatch == ["quick"]

    def test_fairness_floor_jumps_the_queue(self):
        """A client unselected for K versions is due and outranks even
        an infeasible prediction."""
        sched = ClientScheduler("utility", deadline_s=5.0, exploration=0.0,
                                fairness_every_k=2)
        durations = {"doomed": 9.0, "quick": 1.0}
        fn = durations.__getitem__
        sched.note_selected("quick", 0)
        sched.note_selected("doomed", 0)
        # version 3: doomed has waited 3 >= K=2 -> due, selected first.
        dispatch, _ = sched.select_async(["doomed", "quick"], set(durations),
                                         1, 3, fn)
        assert dispatch == ["doomed"]

    def test_cohort_selection_random_returns_default(self):
        sched = ClientScheduler("random")
        default = ["c1", "c3"]
        assert sched.select_cohort(["c1", "c2", "c3"], 0, default,
                                   lambda c: 1.0) == default

    def test_cohort_selection_fastest_keeps_size(self):
        sched = ClientScheduler("fastest")
        durations = {"a": 3.0, "b": 1.0, "c": 2.0}
        cohort = sched.select_cohort(["a", "b", "c"], 0, ["a", "c"],
                                     durations.__getitem__)
        assert cohort == ["b", "c"]


class TestEngineIntegration:
    def test_random_zero_jitter_is_the_legacy_trace(self):
        """The PR acceptance anchor: explicit selection='random' with
        jitter=0 reproduces the default (PR-2) async trace bit-exactly."""
        legacy = make_photon()
        explicit = make_photon(selection="random", jitter=0.0)
        assert trace(legacy.train()) == trace(explicit.train())

    # Tier-2: each policy's training path is exercised in tier-1 by
    # the legacy-trace, determinism and sync-cohort tests.
    @pytest.mark.slow
    def test_policies_change_dispatch_not_correctness(self):
        """Every policy still trains the federation to a finite,
        improving perplexity."""
        for policy in SELECTION_POLICIES:
            photon = make_photon(selection=policy, rounds=1)
            history = photon.train()
            assert len(history) == 1
            assert np.isfinite(history.val_perplexities).all()

    def test_utility_deterministic_across_max_workers(self):
        serial = make_photon(selection="utility", deadline=6.0,
                             drop_policy="drop", jitter=0.1, max_workers=1)
        threaded = make_photon(selection="utility", deadline=6.0,
                               drop_policy="drop", jitter=0.1, max_workers=4)
        assert trace(serial.train()) == trace(threaded.train())

    # Tier-2: the tier-1 jitter-zero anchor plus the hypothesis sweep
    # below cover the identity path; this pair of full engine runs
    # only re-verifies seeded rerun identity of a jittered clock.
    @pytest.mark.slow
    def test_jitter_reruns_identical_but_clock_moves(self):
        """Jittered runs are seeded (rerun-identical) yet tick a
        different simulated clock than the deterministic one."""
        base = make_photon()
        a = make_photon(jitter=0.5)
        b = make_photon(jitter=0.5)
        base.train()
        assert trace(a.train()) == trace(b.train())
        assert (base.aggregator.simulated_wall_time_s
                != a.aggregator.simulated_wall_time_s)

    # Tier-2: the tier-1 anchor test_random_zero_jitter_is_the_legacy_trace
    # covers the fixed-seed case; this sweeps seeds nightly.
    @pytest.mark.slow
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_zero_jitter_bit_exact_property(self, seed):
        """Hypothesis property: for any federation seed, jitter scale 0
        reproduces the unjittered trace bit-exactly."""
        plain = make_photon(population=2, rounds=2, seed=seed)
        zero = make_photon(population=2, rounds=2, seed=seed, jitter=0.0)
        assert trace(plain.train()) == trace(zero.train())

    def test_fairness_floor_prevents_starvation(self):
        """With the floor disabled, utility selection starves the
        deadline-infeasible straggler (a partial cohort means real
        competition for slots); with it, the straggler is attempted
        at least once per K flushes."""
        K = 3

        def run(fairness_every_k):
            fed = FedConfig(population=4, clients_per_round=2,
                            local_steps=2, rounds=10, mode="async",
                            staleness_alpha=0.5, deadline=2.0,
                            drop_policy="drop", selection="utility",
                            exploration=0.0)
            photon = Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                            walltime_config=WALLTIME,
                            client_speed_spread=4.0)
            photon.aggregator.scheduler = ClientScheduler(
                "utility", deadline_s=2.0, exploration=0.0,
                fairness_every_k=fairness_every_k)
            photon.train()
            return photon

        starved = run(None)
        wt = starved.aggregator.walltime
        slowest = max((f"client{i}" for i in range(4)),
                      key=lambda c: wt.client_timing(c, 2).total_s)
        assert wt.client_timing(slowest, 2).total_s > 2.0  # infeasible
        fair = run(K)
        fair_sched = fair.aggregator.scheduler
        starved_sched = starved.aggregator.scheduler
        # The floor produces strictly more attempts for the straggler.
        assert fair_sched.selections.get(slowest, 0) > \
            starved_sched.selections.get(slowest, 0)
        # Once active, no client waits much past K versions between
        # selections (small slack for slot contention: a due client is
        # picked at the next refill, not instantaneously).
        by_client: dict[str, list[int]] = {}
        for version, cid in fair_sched.selection_log:
            by_client.setdefault(cid, []).append(version)
        assert set(by_client) == {f"client{i}" for i in range(4)}
        for versions in by_client.values():
            gaps = np.diff(versions)
            if len(gaps):
                assert gaps.max() <= K + 2

    def test_admit_partial_salvages_and_conserves(self):
        """Partial-work admission: cancelled cycles upload their
        finished prefix, and the ledger conserves every cancelled
        step (dropped + salvaged = cycles * planned steps)."""
        photon = make_photon(local_steps=8, rounds=4, deadline=5.0,
                             drop_policy="admit_partial")
        history = photon.train()
        ledger = photon.aggregator.drop_ledger
        assert ledger.total_salvaged_steps > 0
        # Every cancelled cycle planned the nominal 8 local steps.
        assert (ledger.total_dropped_steps + ledger.total_salvaged_steps
                == ledger.total_cancelled_cycles * 8)
        # Salvaged steps surface per flush record and in the result.
        assert sum(r.salvaged_steps for r in history) \
            == ledger.total_salvaged_steps
        result = photon.result()
        assert result.salvaged_steps == ledger.total_salvaged_steps
        assert result.dropped_steps == ledger.total_dropped_steps

    @pytest.mark.slow  # comparative run; conservation stays tier-1
    def test_admit_partial_beats_drop_on_admitted_steps(self):
        """Salvage means strictly more trained-and-admitted steps than
        dropping the same cancelled cycles."""
        salvage = make_photon(local_steps=8, rounds=4, deadline=5.0,
                              drop_policy="admit_partial")
        drop = make_photon(local_steps=8, rounds=4, deadline=5.0,
                           drop_policy="drop")
        salvage.train()
        drop.train()
        assert salvage.aggregator.drop_ledger.total_dropped_steps < \
            drop.aggregator.drop_ledger.total_dropped_steps

    def test_sync_engine_routes_selection(self):
        """The sync engine's cohort honors the policy too: fastest
        selection picks the k fastest clients of the population."""
        fed = FedConfig(population=4, clients_per_round=2, local_steps=2,
                        rounds=2, selection="fastest")
        photon = Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                        walltime_config=WALLTIME, client_speed_spread=4.0)
        history = photon.train()
        wt = photon.aggregator.walltime
        expected = sorted(
            sorted(f"client{i}" for i in range(4)),
            key=lambda c: (wt.client_timing(c, 2).total_s, c))[:2]
        for record in history:
            assert sorted(record.clients) == sorted(expected)

    def test_sync_random_selection_unchanged(self):
        fed_default = FedConfig(population=4, clients_per_round=2,
                                local_steps=2, rounds=2)
        fed_explicit = FedConfig(population=4, clients_per_round=2,
                                 local_steps=2, rounds=2, selection="random")
        a = Photon(CFG, fed_default, OPTIM, num_shards=4, val_batches=2)
        b = Photon(CFG, fed_explicit, OPTIM, num_shards=4, val_batches=2)
        assert trace(a.train()) == trace(b.train())


class TestConfigAndCLI:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FedConfig(selection="slowest")
        with pytest.raises(ValueError):
            FedConfig(jitter=-0.5, mode="async")
        with pytest.raises(ValueError):
            FedConfig(jitter=0.1)  # sync mode has no per-cycle clock
        with pytest.raises(ValueError):
            FedConfig(exploration=-1.0)
        with pytest.raises(ValueError):
            FedConfig(mode="async", deadline=2.0, drop_policy="admit_half")
        # admit_partial is a legal drop policy now.
        FedConfig(mode="async", deadline=2.0, drop_policy="admit_partial")

    def test_parser_accepts_scheduling_flags(self):
        args = build_parser().parse_args(
            ["train", "--mode", "async", "--selection", "utility",
             "--jitter", "0.2", "--exploration", "0.5",
             "--deadline", "6", "--drop-policy", "admit_partial"])
        assert args.selection == "utility"
        assert args.jitter == 0.2
        assert args.exploration == 0.5
        assert args.drop_policy == "admit_partial"

    def test_parser_rejects_unknown_selection(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--selection", "slowest"])

    def test_cli_rejects_sync_jitter_as_usage_error(self, capsys):
        assert main(["train", "--jitter", "0.5"]) == 2
        assert "jitter" in capsys.readouterr().err

    @pytest.mark.slow
    def test_cli_utility_selection_end_to_end(self, capsys):
        assert main(["train", "--model", "tiny", "--clients", "2",
                     "--local-steps", "2", "--rounds", "2",
                     "--batch-size", "2", "--mode", "async",
                     "--walltime", "--straggler-spread", "3.0",
                     "--selection", "utility", "--jitter", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "selection=utility" in out


class TestSchedulerAwareRequeue:
    """PR 4 satellite: a deadline-cancelled cycle's freed slot goes
    back through the selection policy instead of being unconditionally
    re-issued to the same client."""

    def make_requeue_photon(self, selection, jitter=0.0, **kwargs):
        # Scarce slots (3 of 6) + a deadline only nominal clients meet:
        # under random selection the seed-0 draw pins every slot on an
        # infeasible client, which the legacy unconditional requeue can
        # never unpin.
        fed = FedConfig(population=6, clients_per_round=3, local_steps=4,
                        rounds=2, mode="async", staleness_alpha=0.5,
                        buffer_size=2, deadline=3.0, drop_policy="requeue",
                        selection=selection, jitter=jitter)
        return Photon(CFG, fed, OPTIM, num_shards=6, val_batches=2,
                      walltime_config=WALLTIME, client_speed_spread=4.0,
                      **kwargs)

    def test_random_requeue_livelock_fails_fast(self):
        """The legacy semantics can pin every slot on an over-deadline
        client; the engine now raises a config error instead of
        spinning forever."""
        photon = self.make_requeue_photon("random")
        with pytest.raises(ValueError, match="requeue"):
            photon.train()

    def test_livelock_check_sees_through_jitter_mapping(self):
        """Per-client jitter on clients that *fit* the deadline (or a
        zero scale on one that does not) cannot rescue the pinned
        over-deadline slots — the guard must still fire instead of
        hanging."""
        probe = self.make_requeue_photon("random").aggregator
        clients = sorted(probe.clients)
        feasible = [c for c in clients if probe._base_duration_s(c, 4) <= 3.0]
        doomed = [c for c in clients if probe._base_duration_s(c, 4) > 3.0]
        assert feasible and doomed  # the scenario needs both kinds
        photon = self.make_requeue_photon(
            "random", jitter={feasible[0]: 0.5, doomed[0]: 0.0})
        with pytest.raises(ValueError, match="requeue"):
            photon.train()

    def test_utility_requeue_skips_availability_deferred_idles(self):
        """The freed slot is only contested by idle clients the last
        availability draw found reachable (no extra RNG draws)."""
        photon = self.make_requeue_photon("utility", uptime=0.6)
        history = photon.train()
        assert len(history) == 2
        deferred = photon.aggregator._availability_deferred
        assert deferred <= set(photon.clients)

    def test_utility_requeue_recontests_the_slot(self):
        """Ranked policies hand the freed slot to the best candidate
        from the idle pool — the same federation completes with zero
        dropped work."""
        photon = self.make_requeue_photon("utility")
        history = photon.train()
        assert len(history) == 2
        assert photon.result().dropped_steps == 0

    def test_full_participation_requeue_unchanged(self):
        """With every client in flight the ranked requeue degenerates
        to the legacy immediate re-issue (pool of one)."""
        a = make_photon(population=4, deadline=3.0, drop_policy="requeue",
                        selection="utility", rounds=2)
        h = a.train()
        assert len(h) == 2


class TestStatUtility:
    """PR 4 satellite: recent loss improvement in the utility score."""

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientScheduler("utility", stat_utility_weight=-0.1)
        with pytest.raises(ValueError):
            FedConfig(stat_utility_weight=-1.0)

    def test_note_result_tracks_improvement(self):
        sched = ClientScheduler("utility", stat_utility_weight=1.0)
        sched.note_result("a", 3.0)
        assert "a" not in sched.loss_improvement  # needs two reports
        sched.note_result("a", 2.5)
        assert sched.loss_improvement["a"] == pytest.approx(0.5)
        sched.note_result("a", None)  # missing metric is ignored
        assert sched.loss_improvement["a"] == pytest.approx(0.5)

    def test_stat_term_reorders_selection(self):
        """Equal predicted cycles: weight 0 breaks the tie by id,
        a positive weight prefers the client whose loss improved."""
        picks = {}
        for weight in (0.0, 2.0):
            sched = ClientScheduler("utility", exploration=0.0,
                                    stat_utility_weight=weight)
            for cid, losses in (("a", (3.0, 2.99)), ("b", (3.0, 2.0))):
                for loss in losses:
                    sched.note_result(cid, loss)
            picks[weight], _ = sched.select_async(
                ["a", "b", "c"], {"a", "b", "c"}, 1, 0, lambda c: 1.0)
        assert picks[0.0] == ["a"]
        assert picks[2.0] == ["b"]

    def test_weight_zero_is_bit_exact(self):
        """The default keeps utility selection untouched — the engines
        feed note_result either way, so the score must not move."""
        base = make_photon(selection="utility")
        explicit = make_photon(selection="utility", stat_utility_weight=0.0)
        assert trace(base.train()) == trace(explicit.train())
        # Feedback was recorded even at weight 0 (pure bookkeeping).
        assert base.aggregator.scheduler._last_loss


class TestPerClientJitter:
    """PR 4 satellite: per-client jitter scales (hot devices are
    noisier than racked ones); the scalar path is untouched."""

    def test_mapping_validation(self):
        with pytest.raises(ValueError):
            JitterModel({"a": -0.1})
        with pytest.raises(ValueError):
            FedConfig(mode="async", jitter={"client0": -1.0})
        with pytest.raises(ValueError):
            FedConfig(jitter={"client0": 0.5})  # sync barrier, no clock

    def test_scale_for_lookup(self):
        model = JitterModel({"hot": 0.5}, seed=3)
        assert model.scale_for("hot") == 0.5
        assert model.scale_for("cold") == 0.0
        assert model.scale_for(None) == 0.0
        assert JitterModel(0.3).scale_for("anyone") == 0.3

    def test_unlisted_clients_consume_no_rng(self):
        """A noiseless client inside a mixed federation is the exact
        identity — the stream is only touched by noisy clients, so
        adding quiet clients cannot shift anyone else's draws."""
        model = JitterModel({"hot": 0.5}, seed=3)
        pristine = np.random.default_rng(3).bit_generator.state
        assert model.factor("cold") == 1.0
        assert model.factor(None) == 1.0
        assert model._rng.bit_generator.state == pristine
        assert model.factor("hot") != 1.0
        assert model._rng.bit_generator.state != pristine

    def test_jitter_active_config(self):
        assert not FedConfig(mode="async", jitter={}).jitter_active
        assert not FedConfig(mode="async",
                             jitter={"client0": 0.0}).jitter_active
        assert FedConfig(mode="async", jitter={"client0": 0.4}).jitter_active
        assert FedConfig(mode="async", jitter=0.1).jitter_active

    def test_all_zero_mapping_builds_no_jitter_model(self):
        """An all-quiet mapping takes the bit-exact jitter=None path."""
        photon = make_photon(jitter={"client0": 0.0})
        assert photon.aggregator.jitter is None

    @pytest.mark.slow
    def test_mapped_jitter_runs_deterministically(self):
        a = make_photon(jitter={"client0": 0.5, "client2": 0.1})
        b = make_photon(jitter={"client0": 0.5, "client2": 0.1})
        assert trace(a.train()) == trace(b.train())
