"""State-dict serialization, tree arithmetic, and metric aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    History,
    RoundRecord,
    aggregate_metrics,
    decode_state,
    encode_state,
    state_bytes,
    state_to_vector,
    tree_add,
    tree_mean,
    tree_norm,
    tree_scale,
    tree_sub,
    tree_zeros_like,
    vector_to_state,
)


def sample_state(rng, keys=("a", "b.c")) -> dict:
    return {k: rng.normal(size=(3, 2)).astype(np.float32) for k in keys}


class TestVectorRoundtrip:
    def test_roundtrip(self, rng):
        state = sample_state(rng)
        vec = state_to_vector(state)
        back = vector_to_state(vec, state)
        for k in state:
            np.testing.assert_array_equal(back[k], state[k])

    def test_vector_is_key_sorted(self, rng):
        state = {"z": np.array([1.0], dtype=np.float32),
                 "a": np.array([2.0], dtype=np.float32)}
        np.testing.assert_array_equal(state_to_vector(state), [2.0, 1.0])

    def test_size_mismatch_rejected(self, rng):
        state = sample_state(rng)
        with pytest.raises(ValueError):
            vector_to_state(np.zeros(3), state)

    def test_empty_state_rejected(self):
        with pytest.raises(ValueError):
            state_to_vector({})

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, rows, cols):
        rng = np.random.default_rng(rows * 10 + cols)
        state = {"w": rng.normal(size=(rows, cols)).astype(np.float32)}
        back = vector_to_state(state_to_vector(state), state)
        np.testing.assert_array_equal(back["w"], state["w"])


class TestByteEncoding:
    def test_compressed_roundtrip(self, rng):
        state = sample_state(rng)
        back = decode_state(encode_state(state, compress=True))
        for k in state:
            np.testing.assert_array_equal(back[k], state[k])

    def test_raw_roundtrip(self, rng):
        state = sample_state(rng)
        back = decode_state(encode_state(state, compress=False))
        for k in state:
            np.testing.assert_array_equal(back[k], state[k])

    def test_compression_shrinks_redundant_payloads(self):
        state = {"w": np.zeros((256, 256), dtype=np.float32)}
        compressed = encode_state(state, compress=True)
        raw = encode_state(state, compress=False)
        assert len(compressed) < len(raw) / 10

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_state(b"XXXXgarbage")

    def test_state_bytes(self):
        state = {"w": np.zeros((10, 10), dtype=np.float32)}
        assert state_bytes(state) == 400
        assert state_bytes(state, bytes_per_param=2) == 200


class TestTreeMath:
    def test_add_sub_inverse(self, rng):
        a, b = sample_state(rng), sample_state(rng)
        back = tree_sub(tree_add(a, b), b)
        for k in a:
            np.testing.assert_allclose(back[k], a[k], rtol=1e-6)

    def test_scale(self, rng):
        a = sample_state(rng)
        doubled = tree_scale(a, 2.0)
        for k in a:
            np.testing.assert_allclose(doubled[k], 2 * a[k])

    def test_mean_uniform(self, rng):
        states = [sample_state(rng) for _ in range(3)]
        mean = tree_mean(states)
        for k in states[0]:
            expected = np.mean([s[k] for s in states], axis=0)
            np.testing.assert_allclose(mean[k], expected, rtol=1e-5, atol=1e-6)

    def test_mean_weighted(self, rng):
        a, b = sample_state(rng), sample_state(rng)
        mean = tree_mean([a, b], weights=[3.0, 1.0])
        for k in a:
            np.testing.assert_allclose(mean[k], 0.75 * a[k] + 0.25 * b[k],
                                       rtol=1e-5, atol=1e-6)

    def test_mean_weight_validation(self, rng):
        a = sample_state(rng)
        with pytest.raises(ValueError):
            tree_mean([a], weights=[0.0])
        with pytest.raises(ValueError):
            tree_mean([a, a], weights=[1.0])
        with pytest.raises(ValueError):
            tree_mean([])

    def test_key_mismatch_rejected(self, rng):
        a = sample_state(rng, keys=("a",))
        b = sample_state(rng, keys=("b",))
        with pytest.raises(KeyError):
            tree_add(a, b)

    def test_zeros_like_and_norm(self, rng):
        a = sample_state(rng)
        zeros = tree_zeros_like(a)
        assert tree_norm(zeros) == 0.0
        expected = np.sqrt(sum(float((v**2).sum()) for v in a.values()))
        assert tree_norm(a) == pytest.approx(expected, rel=1e-5)

    @given(st.floats(-5, 5, allow_nan=False), st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_scale_linearity(self, alpha, beta):
        rng = np.random.default_rng(0)
        a = sample_state(rng)
        left = tree_scale(a, alpha + beta)
        right = tree_add(tree_scale(a, alpha), tree_scale(a, beta))
        for k in a:
            np.testing.assert_allclose(left[k], right[k], atol=1e-4)


class TestMetrics:
    def test_aggregate_uniform(self):
        out = aggregate_metrics([{"loss": 1.0}, {"loss": 3.0}])
        assert out["loss"] == pytest.approx(2.0)

    def test_aggregate_weighted(self):
        out = aggregate_metrics([{"loss": 1.0}, {"loss": 3.0}], weights=[3.0, 1.0])
        assert out["loss"] == pytest.approx(1.5)

    def test_partial_keys(self):
        out = aggregate_metrics([{"a": 1.0, "b": 2.0}, {"a": 3.0}])
        assert out["a"] == pytest.approx(2.0)
        assert out["b"] == pytest.approx(2.0)

    def test_empty(self):
        assert aggregate_metrics([]) == {}

    def test_history_accessors(self):
        history = History()
        for i, ppl in enumerate([30.0, 20.0, 25.0]):
            history.append(RoundRecord(i, ppl, np.log(ppl), ["c0"],
                                       comm_bytes_up=10, comm_bytes_down=5))
        assert history.best_perplexity() == 20.0
        assert history.rounds_to_target(21.0) == 1
        assert history.rounds_to_target(10.0) is None
        assert history.total_comm_bytes == 45
        assert len(history) == 3

    def test_round_record_train_ppl(self):
        record = RoundRecord(0, 10.0, np.log(8.0), ["c0"])
        assert record.train_perplexity == pytest.approx(8.0)

    def test_empty_history_best_raises(self):
        with pytest.raises(ValueError):
            History().best_perplexity()
