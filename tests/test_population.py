"""Vectorized control plane (repro.fed.population): the array-backed
scheduler, lazy client pool and population wall-time model must be
bit-exact drop-ins for the eager per-client objects at small N — same
selections, jitter draws, drop ledgers and round histories — while
scaling to million-client federations in O(cohorts + active clients)
memory."""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import ErrorFeedback
from repro.config import FedConfig, ModelConfig, OptimConfig, WallTimeConfig
from repro.fed import (
    ClientPopulation,
    ClientScheduler,
    LazyClientPool,
    Photon,
    PopulationWallTime,
    VectorScheduler,
    normal_quantile,
)
from repro.net.walltime import JitterModel, WallTimeModel

from helpers import assert_bit_exact_resume, run_crash_resume

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32,
                  seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64,
                    batch_size=2, weight_decay=0.0)
WALLTIME = WallTimeConfig(throughput=2.0, bandwidth_mbps=312.5, model_mb=0.05)


# ----------------------------------------------------------------------
# ClientPopulation: the indexed id space + factor arrays
# ----------------------------------------------------------------------
class TestClientPopulation:
    def test_ids_and_index_roundtrip(self):
        pop = ClientPopulation.uniform(12)
        assert len(pop) == 12
        for i, cid in enumerate(pop.ids):
            assert cid == f"client{i}"
            assert pop.index_of(cid) == i
        assert pop.sorted_ids == sorted(pop.ids)
        # lex_rank inverts the sorted order.
        for rank, cid in enumerate(pop.sorted_ids):
            assert pop.lex_rank[pop.index_of(cid)] == rank

    @pytest.mark.parametrize("bad", ["client007", "client-1", "clientx",
                                     "client99", "other3", ""])
    def test_malformed_or_foreign_ids_rejected(self, bad):
        pop = ClientPopulation.uniform(12)
        with pytest.raises(KeyError):
            pop.index_of(bad)

    def test_heterogeneous_matches_eager_walltime_draws(self):
        """The population's factor draws must be bit-identical to
        WallTimeModel.heterogeneous over sorted ids — the eager
        plane's construction — so both planes simulate the same
        federation."""
        n, spread, seed = 11, 5.0, 7
        pop = ClientPopulation.heterogeneous(
            n, compute_spread=spread, bandwidth_spread=spread, seed=seed)
        eager = WallTimeModel.heterogeneous(
            WALLTIME, sorted(f"client{i}" for i in range(n)),
            compute_spread=spread, bandwidth_spread=spread, seed=seed)
        for cid in pop.ids:
            i = pop.index_of(cid)
            assert pop.compute_factors[i] == eager.client_compute_factors[cid]
            assert pop.bandwidth_factors[i] == eager.client_bandwidth_factors[cid]

    def test_population_walltime_matches_eager_model(self):
        n, spread, seed = 9, 4.0, 3
        pop = ClientPopulation.heterogeneous(
            n, compute_spread=spread, bandwidth_spread=spread, seed=seed)
        vec = PopulationWallTime(WALLTIME, pop)
        eager = WallTimeModel.heterogeneous(
            WALLTIME, pop.sorted_ids, compute_spread=spread,
            bandwidth_spread=spread, seed=seed)
        ids = pop.sorted_ids
        arr = vec.client_total_s_array(ids, 16)
        for j, cid in enumerate(ids):
            assert vec.compute_factor(cid) == eager.compute_factor(cid)
            assert arr[j] == eager.client_timing(cid, 16).total_s
        steps = vec.adaptive_steps_array(ids, 16)
        for j, cid in enumerate(ids):
            assert steps[j] == eager.adaptive_local_steps(cid, 16)

    def test_cohorts_share_archetypes(self):
        pop = ClientPopulation.cohorts(20, 4, compute_spread=8.0, seed=1)
        assert len(set(np.round(pop.compute_factors, 12))) <= 4
        for i in range(20):
            assert pop.compute_factors[i] == pop.compute_factors[i % 4]
            assert pop.cohort_of[i] == i % 4

    def test_cohorts_validation(self):
        with pytest.raises(ValueError):
            ClientPopulation.cohorts(4, 0)
        with pytest.raises(ValueError):
            ClientPopulation.cohorts(4, 5)


# ----------------------------------------------------------------------
# S2: jitter-aware feasibility margin
# ----------------------------------------------------------------------
class TestFeasibilityMargin:
    def test_normal_quantile_accuracy(self):
        # Reference values (scipy.stats.norm.ppf); Acklam's
        # approximation is good to ~1e-9 relative error.
        for p, z in ((0.5, 0.0), (0.95, 1.6448536269514722),
                     (0.975, 1.959963984540054), (0.99, 2.3263478740408408),
                     (0.05, -1.6448536269514722)):
            assert normal_quantile(p) == pytest.approx(z, abs=1e-8)
        # Symmetry across the tail branches.
        for p in (0.001, 0.01, 0.2, 0.4):
            assert normal_quantile(p) == pytest.approx(-normal_quantile(1 - p),
                                                       abs=1e-12)

    def test_margin_flips_borderline_feasibility(self):
        """A client whose mean cycle fits the deadline but whose
        95th-percentile cycle does not must lose the slot once the
        quantile margin is active."""
        durations = {"a": 9.5, "b": 9.9}
        jitter = JitterModel({"a": 0.5, "b": 0.0}, seed=0)

        def rank(fq):
            sched = ClientScheduler("utility", deadline_s=10.0,
                                    feasibility_quantile=fq, jitter=jitter)
            return sched._rank(["a", "b"], 0, lambda c: durations[c], 10.0)

        assert rank(None) == ["a", "b"]   # a is faster, both feasible
        assert rank(0.95) == ["b", "a"]   # a's q95 cycle misses the deadline

    def test_margin_requires_quantile_in_unit_interval(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                ClientScheduler("fastest", feasibility_quantile=bad)

    def test_no_jitter_means_no_margin(self):
        sched = ClientScheduler("fastest", feasibility_quantile=0.95)
        assert sched._margin("a") == 1.0


# ----------------------------------------------------------------------
# S4: vectorized scheduler == scalar scheduler, property-tested
# ----------------------------------------------------------------------
def _build_pair(n, policy, seed, fairness, exploration, stat_w, fq):
    pop = ClientPopulation.uniform(n)
    jitter = JitterModel(0.4, seed=seed) if fq is not None else None
    kwargs = dict(fairness_every_k=fairness, exploration=exploration,
                  stat_utility_weight=stat_w, feasibility_quantile=fq,
                  jitter=jitter)
    scalar = ClientScheduler(policy, **kwargs)
    vector = VectorScheduler(pop, policy, **kwargs)
    rng = np.random.default_rng(seed)
    durations = rng.uniform(0.5, 20.0, size=n)
    dur = {cid: float(durations[pop.index_of(cid)]) for cid in pop.ids}
    # Shared selection/result history, applied identically to both.
    for version in range(int(rng.integers(0, 6))):
        for cid in rng.choice(pop.ids, size=rng.integers(1, n), replace=False):
            scalar.note_selected(cid, version)
            vector.note_selected(cid, version)
            loss = float(rng.uniform(1.0, 5.0))
            scalar.note_result(cid, loss)
            vector.note_result(cid, loss)
    return pop, scalar, vector, dur, rng


@given(
    n=st.integers(3, 10),
    policy=st.sampled_from(["random", "fastest", "utility"]),
    seed=st.integers(0, 10_000),
    fairness=st.sampled_from([None, 2, 8]),
    exploration=st.sampled_from([0.0, 1.0]),
    stat_w=st.sampled_from([0.0, 0.5]),
    fq=st.sampled_from([None, 0.95]),
)
@settings(max_examples=60, deadline=None)
def test_select_async_vector_equals_scalar(n, policy, seed, fairness,
                                           exploration, stat_w, fq):
    pop, scalar, vector, dur, rng = _build_pair(
        n, policy, seed, fairness, exploration, stat_w, fq)
    idle = list(rng.permutation(pop.ids))
    reachable = set(rng.choice(idle, size=rng.integers(1, n), replace=False))
    slots = int(rng.integers(1, n + 1))
    version = int(rng.integers(0, 10))
    deadline = float(rng.uniform(2.0, 25.0)) if rng.random() < 0.7 else None

    def duration_fn(c):
        return dur[c]

    def duration_array_fn(ids):
        return np.array([dur[c] for c in ids], dtype=np.float64)

    got_scalar = scalar.select_async(idle, reachable, slots, version,
                                     duration_fn, deadline_s=deadline)
    got_vector = vector.select_async(idle, reachable, slots, version,
                                     duration_fn, deadline_s=deadline,
                                     duration_array_fn=duration_array_fn)
    assert got_vector == got_scalar


@given(
    n=st.integers(3, 10),
    policy=st.sampled_from(["random", "fastest", "utility"]),
    seed=st.integers(0, 10_000),
    fq=st.sampled_from([None, 0.9]),
)
@settings(max_examples=40, deadline=None)
def test_select_cohort_vector_equals_scalar(n, policy, seed, fq):
    pop, scalar, vector, dur, rng = _build_pair(
        n, policy, seed, 8, 1.0, 0.0, fq)
    default = sorted(rng.choice(pop.ids, size=rng.integers(1, n),
                                replace=False))
    round_idx = int(rng.integers(0, 10))

    def duration_fn(c):
        return dur[c]

    def duration_array_fn(ids):
        return np.array([dur[c] for c in ids], dtype=np.float64)

    got_scalar = scalar.select_cohort(pop.sorted_ids, round_idx, default,
                                      duration_fn)
    got_vector = vector.select_cohort(pop.sorted_ids, round_idx, default,
                                      duration_fn,
                                      duration_array_fn=duration_array_fn)
    assert got_vector == got_scalar
    assert list(scalar.selection_log) == list(vector.selection_log)


def test_vector_scheduler_state_roundtrip():
    pop = ClientPopulation.uniform(6)
    a = VectorScheduler(pop, "utility")
    for v in range(4):
        a.note_selected(f"client{v}", v)
        a.note_result(f"client{v}", 3.0 - 0.1 * v)
    b = VectorScheduler(pop, "utility")
    b.load_state_dict(a.state_dict())
    np.testing.assert_array_equal(a._last_selected, b._last_selected)
    np.testing.assert_array_equal(a._selections, b._selections)
    np.testing.assert_array_equal(a._improvement, b._improvement)
    assert list(a.selection_log) == list(b.selection_log)


# ----------------------------------------------------------------------
# Jitter draws: batch == sequential scalar draws
# ----------------------------------------------------------------------
class TestJitterFactors:
    def test_factors_match_scalar_stream(self):
        ids = [f"client{i}" for i in range(7)]
        scales = {cid: (0.0 if i % 3 == 0 else 0.1 * (i + 1))
                  for i, cid in enumerate(ids)}
        a = JitterModel(dict(scales), seed=5)
        b = JitterModel(dict(scales), seed=5)
        batch = a.factors(ids)
        scalar = np.array([b.factor(cid) for cid in ids])
        np.testing.assert_array_equal(batch, scalar)
        # End RNG state identical: the next draw agrees too.
        assert a.factor("client1") == b.factor("client1")

    def test_zero_scale_consumes_no_rng(self):
        a = JitterModel(0.0, seed=9)
        assert list(a.factors([f"c{i}" for i in range(4)])) == [1.0] * 4


# ----------------------------------------------------------------------
# S1: staleness-aware error feedback
# ----------------------------------------------------------------------
def _sd(*values):
    return {"w": np.array(values, dtype=np.float32)}


class TestStalenessErrorFeedback:
    def test_gamma_validation(self):
        for bad in (0.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                ErrorFeedback(staleness_gamma=bad)

    def test_decayed_conservation(self):
        """decoded + residual' == delta + gamma**s * residual, exactly."""
        gamma, banked_at, now = 0.5, 3, 7
        ef = ErrorFeedback(staleness_gamma=gamma)
        ef.record("c", _sd(1.0, -2.0, 0.5), _sd(0.25, -1.0, 0.0),
                  version=banked_at)
        residual = {k: v.copy() for k, v in ef.residual("c").items()}
        delta = _sd(0.1, 0.2, -0.3)
        sent = ef.apply("c", delta, version=now)
        decoded = _sd(0.0, 0.1, -0.25)  # what a lossy wire kept
        ef.record("c", sent, decoded, version=now)
        factor = np.float32(gamma ** (now - banked_at))
        lhs = decoded["w"] + ef.residual("c")["w"]
        rhs = delta["w"] + factor * residual["w"]
        np.testing.assert_array_equal(lhs, rhs)

    def test_gamma_one_is_legacy_bit_exact(self):
        legacy = ErrorFeedback()
        decayed = ErrorFeedback(staleness_gamma=1.0)
        for ef in (legacy, decayed):
            ef.record("c", _sd(1.0, 2.0), _sd(0.5, 1.5), version=0)
        a = legacy.apply("c", _sd(0.3, 0.4), version=9)
        b = decayed.apply("c", _sd(0.3, 0.4), version=9)
        np.testing.assert_array_equal(a["w"], b["w"])

    def test_zero_staleness_no_decay(self):
        ef = ErrorFeedback(staleness_gamma=0.5)
        ef.record("c", _sd(1.0), _sd(0.25), version=4)
        sent = ef.apply("c", _sd(0.0), version=4)
        np.testing.assert_array_equal(sent["w"], np.array([0.75],
                                                          dtype=np.float32))

    def test_snapshot_restore_keeps_banked_versions(self):
        ef = ErrorFeedback(staleness_gamma=0.9)
        ef.record("c", _sd(1.0), _sd(0.5), version=2)
        snap = ef.snapshot()
        ef.record("c", _sd(3.0), _sd(2.0), version=6)
        ef.restore(snap)
        assert ef._banked_version["c"] == 2
        np.testing.assert_array_equal(ef.residual("c")["w"],
                                      np.array([0.5], dtype=np.float32))

    def test_state_dict_roundtrip(self):
        a = ErrorFeedback(staleness_gamma=0.8)
        a.record("c", _sd(1.0), _sd(0.25), version=5)
        b = ErrorFeedback(staleness_gamma=0.8)
        b.load_state_dict(a.state_dict())
        assert b._banked_version == {"c": 5}
        sent_a = a.apply("c", _sd(0.1), version=8)
        sent_b = b.apply("c", _sd(0.1), version=8)
        np.testing.assert_array_equal(sent_a["w"], sent_b["w"])


# ----------------------------------------------------------------------
# LazyClientPool: bounded materialization, bit-exact eviction
# ----------------------------------------------------------------------
class TestLazyClientPool:
    def test_mapping_protocol(self):
        pop = ClientPopulation.uniform(5)
        pool = LazyClientPool(pop, lambda cid: object(), max_live=2)
        assert len(pool) == 5
        assert sorted(pool) == pool.sorted_ids()
        assert "client3" in pool and "client9" not in pool
        assert pool.live_count() == 0  # nothing materialized yet

    def test_eviction_respects_cap_and_leases(self):
        pop = ClientPopulation.uniform(4)

        class FakeClient:
            def __init__(self):
                self.tokens_processed = 0
                self.loaded = None

            def state_dict(self):
                return {"tokens_processed": self.tokens_processed}

            def load_state_dict(self, state):
                self.loaded = state
                self.tokens_processed = int(state["tokens_processed"])

        pool = LazyClientPool(pop, lambda cid: FakeClient(), max_live=2)
        pool["client0"].tokens_processed = 10
        pool["client1"].tokens_processed = 20
        assert pool.live_count() == 2
        with pool.lease("client0") as c0:
            assert c0.tokens_processed == 10
            pool["client2"]  # evicts client1 (LRU, unleased)
            pool["client3"]  # over cap, but client0 is pinned
            assert pool.live_count() >= 2
        # Rematerialization restores the parked counters exactly.
        assert pool["client1"].tokens_processed == 20
        assert pool.total_tokens_processed() == 30
        assert pool.evictions > 0

    def test_state_dict_only_touched_clients(self):
        pop = ClientPopulation.uniform(100)

        class FakeClient:
            tokens_processed = 0

            def state_dict(self):
                return {"tokens_processed": 0}

            def load_state_dict(self, state):
                pass

        pool = LazyClientPool(pop, lambda cid: FakeClient(), max_live=3)
        for cid in ("client5", "client17"):
            pool[cid]
        assert set(pool.state_dict()["touched"]) == {"client5", "client17"}
        with pytest.raises(KeyError):
            pool.load_state_dict({"touched": {"stranger1": {}}})


# ----------------------------------------------------------------------
# End-to-end: eager plane == vector plane at small N
# ----------------------------------------------------------------------
def vector_photon(population=8, rounds=2, plane="vector", mode="async",
                  selection="utility", seed=3, **overrides):
    fed_kwargs = dict(population=population, clients_per_round=4,
                      local_steps=2, rounds=rounds, mode=mode,
                      selection=selection, seed=seed,
                      client_plane=plane)
    if mode == "async":
        fed_kwargs.update(buffer_size=2, deadline=60.0,
                          drop_policy="requeue", jitter=0.3,
                          feasibility_quantile=(0.95 if selection != "random"
                                                else None))
    fed_kwargs.update(overrides)
    fed = FedConfig(**fed_kwargs)
    return Photon(CFG, fed, OPTIM, corpus="pile", val_batches=2,
                  walltime_config=WALLTIME, client_speed_spread=4.0,
                  uptime=0.9)


def _assert_same_run(pe, pv):
    assert [asdict(r) for r in pe.history] == [asdict(r) for r in pv.history]
    assert (list(pe.aggregator.scheduler.selection_log)
            == list(pv.aggregator.scheduler.selection_log))
    assert pe.result().tokens_processed == pv.result().tokens_processed
    ledger_e = getattr(pe.aggregator, "drop_ledger", None)
    if ledger_e is not None:
        assert ledger_e.state_dict() == pv.aggregator.drop_ledger.state_dict()


class TestEagerVectorEquivalence:
    def test_async_utility_full_stack(self):
        """The headline anchor: deadline + requeue + jitter + quantile
        margin + availability + heterogeneous clock, utility policy."""
        pe = vector_photon(plane="eager")
        pv = vector_photon(plane="vector")
        pe.train()
        pv.train()
        _assert_same_run(pe, pv)
        # The vector plane actually ran lazily.
        assert hasattr(pv.clients, "lease")

    def test_async_random_legacy_anchor(self):
        pe = vector_photon(plane="eager", selection="random")
        pv = vector_photon(plane="vector", selection="random")
        pe.train()
        pv.train()
        _assert_same_run(pe, pv)

    def test_sync_fastest(self):
        pe = vector_photon(plane="eager", mode="sync", selection="fastest")
        pv = vector_photon(plane="vector", mode="sync", selection="fastest")
        pe.train()
        pv.train()
        _assert_same_run(pe, pv)

    def test_max_live_does_not_change_history(self):
        """Eviction is bit-exact: a pool squeezed to 2 live clients
        replays the unconstrained run identically."""
        tight = vector_photon(max_live_clients=2)
        roomy = vector_photon(max_live_clients=64)
        tight.train()
        roomy.train()
        _assert_same_run(tight, roomy)
        assert tight.clients.evictions > 0
        assert tight.clients.live_count() <= 2 + 1  # leased overshoot

    @pytest.mark.slow
    def test_equivalence_sweep(self):
        for mode in ("sync", "async"):
            for selection in ("random", "fastest", "utility"):
                for seed in (0, 3):
                    pe = vector_photon(plane="eager", mode=mode,
                                       selection=selection, seed=seed)
                    pv = vector_photon(plane="vector", mode=mode,
                                       selection=selection, seed=seed)
                    pe.train()
                    pv.train()
                    _assert_same_run(pe, pv)


class TestVectorPlaneCheckpointResume:
    def test_vector_kill_and_resume_bit_exact(self):
        full, resumed = run_crash_resume(
            lambda **kw: vector_photon(rounds=4, **kw), rounds=4, kill_at=2)
        assert_bit_exact_resume(full, resumed)
        assert hasattr(resumed.clients, "lease")


class TestVectorPlaneConfig:
    def test_vector_plane_rejects_stream_dict(self):
        streams = {"clientX": object()}
        fed = FedConfig(population=1, clients_per_round=1, local_steps=1,
                        rounds=1, client_plane="vector")
        with pytest.raises(ValueError, match="vector"):
            Photon(CFG, fed, OPTIM, corpus=streams)

    def test_cohorts_requires_vector_plane(self):
        with pytest.raises(ValueError):
            FedConfig(population=4, clients_per_round=2, local_steps=1,
                      rounds=1, cohorts=2)

    def test_cohort_photon_runs(self):
        p = vector_photon(cohorts=2, rounds=2)
        p.train()
        assert len(p.history) == 2
        assert p.population.cohort_of is not None
