"""Parallel local planes (batched stepping + procpool) and the
persistent dispatch executor.

The contract under test: ``local_plane`` changes *throughput only*.
Batched stepping of K stacked clients is bit-exact against K
sequential ``client.train`` calls (property-tested across cohort
sizes, shapes and optimizer configs), the procpool plane reproduces
the single-process run — final weights, history and drop ledger —
exactly, and both planes stay crash-consistent under checkpoint/
resume.  The per-dispatch ThreadPoolExecutor churn fix and the
read-only proximal anchors ride along.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FedConfig, ModelConfig, OptimConfig, WallTimeConfig
from repro.data import CachedTokenStream, SyntheticC4
from repro.fed import FailureModel, LLMClient, Photon
from repro.fed import engine as engine_module
from repro.fed.batched import batch_eligible, batch_group_key, train_clients_batched
from repro.fed.engine import SyncAggregator
from repro.fed.types import RoundInfo
from repro.nn import DecoderLM
from repro.optim import ConstantLR
from repro.tensor import Tensor, ops

from helpers import (
    assert_bit_exact_resume,
    assert_states_equal,
    check_gradients,
    run_crash_resume,
)

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32,
                  seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64,
                    batch_size=2, weight_decay=0.0)
WALLTIME = WallTimeConfig(throughput=2.0, bandwidth_mbps=312.5, model_mb=0.05)


def make_stream(cfg, shard=0, seed=0, batch=2):
    c4 = SyntheticC4(num_shards=8, vocab=cfg.vocab_size, seed=1)
    return CachedTokenStream(c4.shard(shard), batch_size=batch,
                             seq_len=cfg.seq_len, cache_tokens=1024, seed=seed)


def make_clients(cfg, optim, n, **kwargs):
    return [
        LLMClient(f"c{i}", cfg, make_stream(cfg, shard=i, seed=i,
                                            batch=optim.batch_size),
                  optim, ConstantLR(optim.max_lr), **kwargs)
        for i in range(n)
    ]


def train_sequential(clients, global_state, infos):
    return [
        client.train({k: v.copy() for k, v in global_state.items()}, info)
        for client, info in zip(clients, infos)
    ]


# ----------------------------------------------------------------------
# Fused batched ops: finite-difference gradient checks
# ----------------------------------------------------------------------

class TestBatchedOps:
    def test_batched_embedding_gradients(self, rng):
        indices = rng.integers(0, 5, size=(3, 2, 4))
        weight = rng.normal(size=(3, 5, 6)).astype(np.float32)
        check_gradients(lambda w: ops.batched_embedding(w, indices), [weight])

    def test_batched_cross_entropy_gradients(self, rng):
        logits = rng.normal(size=(2, 3, 4, 7)).astype(np.float32)
        targets = rng.integers(0, 7, size=(2, 3, 4))
        targets[0, 0, 1] = -100  # exercise the ignore_index mask
        check_gradients(
            lambda lg: ops.batched_cross_entropy(lg, targets), [logits])

    def test_batched_ops_match_scalar_slices(self, rng):
        """Forward values: slice k of the batched op == the scalar op
        on that slice, bitwise."""
        weight = rng.normal(size=(3, 5, 6)).astype(np.float32)
        indices = rng.integers(0, 5, size=(3, 2, 4))
        batched = ops.batched_embedding(Tensor(weight), indices)
        for k in range(3):
            np.testing.assert_array_equal(
                batched.data[k], ops.embedding(Tensor(weight[k]),
                                               indices[k]).data)
        logits = rng.normal(size=(3, 2, 4, 7)).astype(np.float32)
        targets = rng.integers(0, 7, size=(3, 2, 4))
        losses = ops.batched_cross_entropy(Tensor(logits), targets)
        for k in range(3):
            np.testing.assert_array_equal(
                losses.data[k],
                ops.cross_entropy(Tensor(logits[k]), targets[k]).data)


# ----------------------------------------------------------------------
# Batched == sequential: the hypothesis property
# ----------------------------------------------------------------------

class TestBatchedEqualsSequential:
    @settings(max_examples=8, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=4),
        n_blocks=st.integers(min_value=1, max_value=2),
        d_model=st.sampled_from([8, 16]),
        vocab=st.sampled_from([17, 32]),
        tied=st.booleans(),
        steps=st.integers(min_value=1, max_value=3),
        weight_decay=st.sampled_from([0.0, 0.1]),
        grad_clip=st.sampled_from([0.05, 1.0]),
        stagger=st.booleans(),
    )
    def test_property_batched_equals_k_sequential(
            self, k, n_blocks, d_model, vocab, tied, steps, weight_decay,
            grad_clip, stagger):
        """Stacked training of K clients is bit-exact against K
        sequential ``client.train`` calls — deltas, losses, metrics —
        across cohort sizes, layer shapes, optimizer configs and
        (``stagger``) heterogeneous LR step bases.  ``grad_clip=0.05``
        forces the per-client clip branch to actually fire."""
        cfg = ModelConfig("prop", n_blocks=n_blocks, d_model=d_model,
                          n_heads=2, vocab_size=vocab, seq_len=8,
                          tie_embeddings=tied)
        optim = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64,
                            batch_size=2, weight_decay=weight_decay,
                            grad_clip=grad_clip)
        global_state = DecoderLM(cfg, seed=7).state_dict()
        infos = [
            RoundInfo(round_idx=0, local_steps=steps,
                      global_step_base=(11 * i if stagger else 0))
            for i in range(k)
        ]

        seq = train_sequential(make_clients(cfg, optim, k), global_state,
                               infos)
        clients = make_clients(cfg, optim, k)
        assert all(batch_eligible(c) for c in clients)
        bat = train_clients_batched(
            clients,
            [{n: v.copy() for n, v in global_state.items()} for _ in range(k)],
            infos,
        )

        for s, b in zip(seq, bat):
            assert s.client_id == b.client_id
            assert s.num_tokens == b.num_tokens
            assert s.num_steps == b.num_steps
            assert s.metrics == b.metrics
            assert_states_equal(s.delta, b.delta)

    def test_counters_advance_like_sequential(self):
        info = RoundInfo(round_idx=0, local_steps=2, global_step_base=0)
        clients = make_clients(CFG, OPTIM, 2)
        state = DecoderLM(CFG, seed=7).state_dict()
        train_clients_batched(clients, [state, dict(state)], [info, info])
        for client in clients:
            assert client.rounds_participated == 1
            assert client.tokens_processed == 2 * OPTIM.batch_size * CFG.seq_len

    def test_eligibility_gate(self):
        eligible = make_clients(CFG, OPTIM, 1)[0]
        assert batch_eligible(eligible)
        proximal = make_clients(CFG, OPTIM, 1, proximal_mu=0.1)[0]
        stateful = make_clients(CFG, OPTIM, 1, stateless=False)[0]
        assert not batch_eligible(proximal)
        assert not batch_eligible(stateful)
        dropout_cfg = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2,
                                  vocab_size=32, seq_len=16, dropout=0.1)
        droppy = LLMClient("d", dropout_cfg, make_stream(dropout_cfg), OPTIM,
                           ConstantLR(3e-3))
        assert not batch_eligible(droppy)

    def test_group_key_separates_heterogeneous_configs(self):
        info = RoundInfo(round_idx=0, local_steps=2, global_step_base=0)
        a = make_clients(CFG, OPTIM, 1)[0]
        other_optim = OptimConfig(max_lr=3e-3, warmup_steps=2,
                                  schedule_steps=64, batch_size=2,
                                  weight_decay=0.1)
        b = LLMClient("b", CFG, make_stream(CFG), other_optim,
                      ConstantLR(3e-3))
        assert batch_group_key(a, info) != batch_group_key(b, info)
        # Different pulled versions (async) still stack: the LR base is
        # per-client, not part of the key.
        later = RoundInfo(round_idx=3, local_steps=2, global_step_base=6)
        assert batch_group_key(a, info) == batch_group_key(a, later)


# ----------------------------------------------------------------------
# Engine equivalence: each plane replays the sequential run exactly
# ----------------------------------------------------------------------

def sync_photon(rounds=2, seed=0, **overrides):
    fed_kwargs = dict(population=4, clients_per_round=3, local_steps=2,
                      rounds=rounds, server_opt="fedadam", server_lr=0.02,
                      seed=seed)
    fed_kwargs.update(overrides)
    max_workers = fed_kwargs.pop("max_workers", 1)
    fed = FedConfig(**fed_kwargs)
    return Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                  max_workers=max_workers, uptime=0.9,
                  failure_model=FailureModel(crash_prob=0.1, seed=seed + 1))


def async_photon(rounds=3, seed=0, **overrides):
    """Async with the fault stack live: deadline + requeue, jitter,
    heterogeneous clock, crash injection, lossy int8 uplink with EF."""
    fed_kwargs = dict(population=4, clients_per_round=3, local_steps=2,
                      rounds=rounds, mode="async", buffer_size=2,
                      staleness_alpha=0.5, deadline=2.0,
                      drop_policy="requeue", jitter=0.3, compression="int8",
                      error_feedback=True, server_opt="fedmom",
                      server_momentum=0.9, seed=seed)
    fed_kwargs.update(overrides)
    max_workers = fed_kwargs.pop("max_workers", 1)
    spread = fed_kwargs.pop("client_speed_spread", 3.0)
    fed = FedConfig(**fed_kwargs)
    return Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                  walltime_config=WALLTIME, client_speed_spread=spread,
                  max_workers=max_workers, uptime=0.9,
                  failure_model=FailureModel(crash_prob=0.1, seed=seed + 1))


def assert_same_run(a, b):
    """Two Photon runs are indistinguishable: history, weights, wire
    accounting and (when present) the drop ledger."""
    assert len(a.history) == len(b.history)
    for ra, rb in zip(a.history, b.history):
        assert ra.clients == rb.clients
        assert ra.val_perplexity == rb.val_perplexity
        assert ra.train_loss == rb.train_loss
        assert ra.comm_bytes_up == rb.comm_bytes_up
        assert ra.raw_bytes_up == rb.raw_bytes_up
    assert_states_equal(a.aggregator.global_state, b.aggregator.global_state)
    ledger_a = getattr(a.aggregator, "drop_ledger", None)
    if ledger_a is not None:
        assert ledger_a.state_dict() == b.aggregator.drop_ledger.state_dict()


class TestEnginePlaneEquivalence:
    def test_sync_batched_matches_sequential(self):
        ref = sync_photon()
        ref.train()
        run = sync_photon(local_plane="batched")
        run.train()
        assert_same_run(ref, run)

    def test_async_batched_matches_sequential_with_fault_stack(self):
        """Waves mix pulled versions, deadlines cancel cycles, EF banks
        int8 residuals — the batched plane must replay all of it."""
        ref = async_photon()
        ref.train()
        run = async_photon(local_plane="batched")
        run.train()
        assert_same_run(ref, run)
        assert ref.aggregator.drop_ledger.total_cancelled_cycles > 0

    def test_sync_procpool_matches_sequential(self):
        ref = sync_photon()
        ref.train()
        run = sync_photon(local_plane="procpool", max_workers=2)
        run.train()
        assert_same_run(ref, run)

    def test_async_procpool_matches_sequential(self):
        ref = async_photon()
        ref.train()
        run = async_photon(local_plane="procpool", max_workers=2)
        run.train()
        assert_same_run(ref, run)

    def test_mixed_wave_falls_back_per_client(self):
        """An ineligible (proximal) client inside a batched wave takes
        the sequential path while the rest stack — same result."""
        def build(plane):
            clients = make_clients(CFG, OPTIM, 3)
            clients.append(LLMClient("p", CFG, make_stream(CFG, shard=3,
                                                           seed=3),
                                     OPTIM, ConstantLR(OPTIM.max_lr),
                                     proximal_mu=0.1))
            engine = SyncAggregator(
                CFG, {c.client_id: c for c in clients}, local_plane=plane)
            engine.run(rounds=2, local_steps=2)
            return engine
        ref, bat = build("sequential"), build("batched")
        assert_states_equal(ref.global_state, bat.global_state)

    def test_vector_client_plane_composes_with_batched(self):
        ref = sync_photon(client_plane="vector", cohorts=2)
        ref.train()
        run = sync_photon(client_plane="vector", cohorts=2,
                          local_plane="batched")
        run.train()
        assert_same_run(ref, run)


# ----------------------------------------------------------------------
# Satellite: persistent dispatch executor (no per-flush churn)
# ----------------------------------------------------------------------

class _CountingExecutor(engine_module.ThreadPoolExecutor):
    instances = 0

    def __init__(self, *args, **kwargs):
        type(self).instances += 1
        super().__init__(*args, **kwargs)


class TestPersistentExecutor:
    def test_threads_reused_across_flushes(self, monkeypatch):
        """The engine used to build and tear down a ThreadPoolExecutor
        per dispatch batch; now exactly one is created per run and the
        same threads serve every flush."""
        monkeypatch.setattr(engine_module, "ThreadPoolExecutor",
                            _CountingExecutor)
        _CountingExecutor.instances = 0
        photon = sync_photon(rounds=3, max_workers=2)
        photon.train()
        assert _CountingExecutor.instances == 1
        # ... and the run's finally-block released it.
        assert photon.aggregator._executor is None

    def test_async_threads_reused_across_flushes(self, monkeypatch):
        monkeypatch.setattr(engine_module, "ThreadPoolExecutor",
                            _CountingExecutor)
        _CountingExecutor.instances = 0
        # Equipollent clients (no spread, no jitter, no deadline) make
        # completions tie, so batches of >1 survivors hit the executor.
        photon = async_photon(rounds=3, max_workers=2, compression="none",
                              error_feedback=False, jitter=0.0,
                              deadline=None, drop_policy=None,
                              client_speed_spread=1.0)
        photon.train()
        assert _CountingExecutor.instances == 1
        assert photon.aggregator._executor is None

    def test_state_dict_shuts_workers_down(self):
        engine = sync_photon(rounds=1, max_workers=2).aggregator
        engine._get_executor()
        assert engine._executor is not None
        engine.state_dict()
        assert engine._executor is None


# ----------------------------------------------------------------------
# Satellite: the broadcast state is never aliased or mutated
# ----------------------------------------------------------------------

class TestGlobalStateAliasing:
    @pytest.mark.parametrize("proximal_mu", [0.0, 0.1])
    def test_train_never_mutates_global_state(self, proximal_mu):
        client = make_clients(CFG, OPTIM, 1, proximal_mu=proximal_mu)[0]
        global_state = DecoderLM(CFG, seed=7).state_dict()
        snapshot = {k: v.copy() for k, v in global_state.items()}
        info = RoundInfo(round_idx=0, local_steps=2, global_step_base=0)
        client.train(global_state, info)
        assert_states_equal(global_state, snapshot)
        # The trained workspace must not alias the broadcast buffers.
        for name, param in client.model.named_parameters():
            assert not np.shares_memory(param.data, global_state[name])

    def test_proximal_anchors_are_views_not_copies(self):
        """The no-personalization path reads the global state through
        read-only views — zero copies of the full model per round."""
        client = make_clients(CFG, OPTIM, 1, proximal_mu=0.1)[0]
        global_state = DecoderLM(CFG, seed=7).state_dict()
        info = RoundInfo(round_idx=0, local_steps=1, global_step_base=0)
        # Read-only broadcast buffers must be accepted as-is: a write
        # anywhere in the training path would raise.
        for arr in global_state.values():
            arr.flags.writeable = False
        client.train(global_state, info)


# ----------------------------------------------------------------------
# Crash-consistent checkpoint/resume under the new planes
# ----------------------------------------------------------------------

class TestPlaneCheckpointResume:
    def test_sync_batched_kill_and_resume(self):
        full, resumed = run_crash_resume(
            lambda **kw: sync_photon(local_plane="batched", **kw),
            rounds=2, kill_at=1)
        assert_bit_exact_resume(full, resumed)

    def test_async_batched_kill_and_resume(self):
        full, resumed = run_crash_resume(
            lambda **kw: async_photon(local_plane="batched", **kw),
            rounds=3, kill_at=2)
        assert_bit_exact_resume(full, resumed)

    def test_sync_procpool_kill_and_resume(self):
        full, resumed = run_crash_resume(
            lambda **kw: sync_photon(local_plane="procpool", max_workers=2,
                                     **kw),
            rounds=2, kill_at=1)
        assert_bit_exact_resume(full, resumed)

    def test_resume_crosses_planes(self):
        """A sequential checkpoint restores into a batched engine (and
        vice versa): the plane is execution strategy, not state."""
        full, resumed = run_crash_resume(
            lambda **kw: sync_photon(
                local_plane="batched" if kw.get("resume") else "sequential",
                **kw),
            rounds=2, kill_at=1)
        assert_bit_exact_resume(full, resumed)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

class TestPlaneValidation:
    def test_fed_config_rejects_unknown_plane(self):
        with pytest.raises(ValueError, match="local_plane"):
            FedConfig(local_plane="vectorized")

    def test_fed_config_rejects_procpool_with_compressed_broadcast(self):
        with pytest.raises(ValueError, match="compress_broadcast"):
            FedConfig(local_plane="procpool", compression="int8",
                      compress_broadcast=True)

    def test_engine_rejects_unknown_plane(self):
        clients = {c.client_id: c for c in make_clients(CFG, OPTIM, 1)}
        with pytest.raises(ValueError, match="local_plane"):
            SyncAggregator(CFG, clients, local_plane="bogus")
