"""Update-compression subsystem: codec round-trips, quantization error
bounds, top-k energy capture, error-feedback conservation, and the
load-bearing regression — ``compression="none"`` is bit-exact with the
legacy lossless Link in both engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compress import (
    Codec,
    CodecRegistry,
    ErrorFeedback,
    Fp16Codec,
    Int4Codec,
    Int8Codec,
    RandKCodec,
    TopKCodec,
    make_codec,
)
from repro.config import FedConfig, ModelConfig, OptimConfig
from repro.fed import Photon
from repro.fed.link import Link
from repro.utils.serialization import state_bytes

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32,
                  seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64,
                    batch_size=2, weight_decay=0.0)

ALL_SPECS = ["fp16", "int8", "int4", "topk:0.1", "randk:0.1",
             "topk:0.1+fp16", "int8+fp16"]


def make_state(seed=0, shapes=((24, 16), (17,), ())):
    rng = np.random.default_rng(seed)
    return {
        f"t{i}": rng.normal(0, 0.01, size=s).astype(np.float32)
        for i, s in enumerate(shapes)
    }


def make_photon(**kwargs):
    fed_keys = ("compression", "error_feedback", "compress_broadcast",
                "mode", "seed")
    fk = {k: kwargs.pop(k) for k in fed_keys if k in kwargs}
    fed = FedConfig(population=3, clients_per_round=3, local_steps=2,
                    rounds=2, **fk)
    return Photon(CFG, fed, OPTIM, num_shards=3, val_batches=2, **kwargs)


def trace(history):
    return (history.val_perplexities, history.train_losses,
            [r.pseudo_grad_norm for r in history])


class TestCodecRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_shapes_keys_dtypes_survive(self, spec):
        state = make_state()
        back = make_codec(spec, seed=1).roundtrip(state, "c0", "agg")
        assert set(back) == set(state)
        for k in state:
            assert back[k].shape == state[k].shape
            assert back[k].dtype == np.float32

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_encode_is_deterministic_per_channel(self, spec):
        state = make_state()
        a, b = make_codec(spec, seed=3), make_codec(spec, seed=3)
        # Same channel, same draw index -> identical payloads; the
        # stream survives consecutive encodes.
        assert a.encode(state, "c0", "agg") == b.encode(state, "c0", "agg")
        assert a.encode(state, "c0", "agg") == b.encode(state, "c0", "agg")

    def test_channels_are_independent_streams(self):
        state = make_state()
        codec = make_codec("int8", seed=3)
        solo = make_codec("int8", seed=3)
        # Interleaving another channel's draws must not disturb c0's.
        first = codec.encode(state, "c0", "agg")
        codec.encode(state, "c1", "agg")
        second = codec.encode(state, "c0", "agg")
        assert first == solo.encode(state, "c0", "agg")
        assert second == solo.encode(state, "c0", "agg")

    def test_zero_state_and_odd_sizes(self):
        state = {"z": np.zeros((5, 3), dtype=np.float32),
                 "odd": np.ones(7, dtype=np.float32)}
        for spec in ("int8", "int4", "topk:0.3"):
            back = make_codec(spec, seed=0).roundtrip(state, "c", "a")
            assert np.array_equal(back["z"], state["z"])
            assert back["odd"].shape == (7,)

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_empty_tensors_pass_through(self, spec):
        state = {"empty": np.zeros((0,), dtype=np.float32),
                 "also": np.zeros((3, 0), dtype=np.float32),
                 "real": np.ones((4,), dtype=np.float32)}
        back = make_codec(spec, seed=0).roundtrip(state, "c", "a")
        assert back["empty"].shape == (0,)
        assert back["also"].shape == (3, 0)
        assert back["real"].shape == (4,)

    def test_wrong_magic_rejected(self):
        with pytest.raises(ValueError):
            make_codec("fp16").decode(b"ZLB0garbage")

    def test_lossless_flag(self):
        assert Codec("empty", []).lossless
        assert not make_codec("int8").lossless


class TestRegistry:
    def test_none_returns_none(self):
        assert make_codec("none") is None

    @pytest.mark.parametrize("bad", [
        "nope", "topk", "topk:0", "topk:1.5", "topk:x", "randk",
        "none+fp16", "fp16:3", "int8:2",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            make_codec(bad)

    def test_duplicate_registration_rejected(self):
        registry = CodecRegistry()
        registry.register("x", lambda arg, seed: None)
        with pytest.raises(ValueError):
            registry.register("x", lambda arg, seed: None)

    def test_convenience_constructors(self):
        for codec in (Fp16Codec(), Int8Codec(seed=1), Int4Codec(seed=1),
                      TopKCodec(0.2, seed=1), RandKCodec(0.2, seed=1)):
            back = codec.roundtrip(make_state(), "c", "a")
            assert set(back) == {"t0", "t1", "t2"}

    def test_chain_seeds_differ_per_stage(self):
        # Two stochastic stages in one chain must not mirror draws:
        # each stage gets a distinct seed offset by its position.
        codec = make_codec("topk:0.5+int8", seed=7)
        assert codec.stages[0].seed == 7
        assert codec.stages[1].seed == 1007
        assert [s.name for s in codec.stages] == ["topk", "int8"]


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float32, st.integers(1, 200),
                  elements=st.floats(-10, 10, width=32)))
def test_int8_error_bounded_by_scale(value):
    """Stochastic rounding: |decoded − x| < scale elementwise."""
    state = {"v": value}
    back = make_codec("int8", seed=0).roundtrip(state, "c", "a")
    scale = float(np.abs(value).max()) / 127 if np.abs(value).max() else 1.0
    assert np.abs(back["v"] - value).max() <= scale + 1e-6


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float32, st.integers(1, 200),
                  elements=st.floats(-10, 10, width=32)))
def test_int4_error_bounded_by_scale(value):
    state = {"v": value}
    back = make_codec("int4", seed=0).roundtrip(state, "c", "a")
    scale = float(np.abs(value).max()) / 7 if np.abs(value).max() else 1.0
    assert np.abs(back["v"] - value).max() <= scale + 1e-6


def test_int8_stochastic_rounding_unbiased():
    """E[decoded] = x: the mean over independent encodes converges."""
    value = np.full(64, 0.3, dtype=np.float32)  # lands between codes
    codec = make_codec("int8", seed=0)
    total = np.zeros(64)
    reps = 200
    for _ in range(reps):
        total += codec.roundtrip({"v": value}, "c", "a")["v"]
    scale = 0.3 / 127
    assert abs(total.mean() / reps - 0.3) < 3 * scale / np.sqrt(64 * reps)


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float32, st.integers(10, 400),
                  elements=st.floats(-5, 5, width=32)),
       st.floats(0.05, 0.9))
def test_topk_captures_max_energy(value, fraction):
    """The kept support carries at least as much L2 energy as any
    other k-subset — in particular at least k/n of the total."""
    back = make_codec(f"topk:{fraction:g}", seed=0).roundtrip(
        {"v": value}, "c", "a")["v"]
    k = max(1, int(round(fraction * value.size)))
    total = float(np.sum(value.astype(np.float64) ** 2))
    kept = float(np.sum(back.astype(np.float64) ** 2))
    assert np.count_nonzero(back) <= k
    assert kept >= (k / value.size) * total - 1e-6
    # fp16 tolerance not needed: plain topk ships exact fp32 values.
    kept_exact = np.sort(np.abs(value))[-k:]
    assert kept == pytest.approx(float(np.sum(kept_exact.astype(np.float64) ** 2)),
                                 rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1), st.sampled_from(["int8", "int4",
                                                   "topk:0.2", "randk:0.2"]))
def test_error_feedback_conserves_mass(seed, spec):
    """delta + residual_old == decoded + residual_new: no gradient
    mass is ever lost, only deferred."""
    codec = make_codec(spec, seed=1)
    ef = ErrorFeedback()
    rng = np.random.default_rng(seed)
    for _ in range(3):
        delta = {"w": rng.normal(0, 0.01, size=(13, 7)).astype(np.float32)}
        before = ef.residual("c0")
        sent = ef.apply("c0", delta)
        decoded = codec.roundtrip(sent, "c0", "agg")
        ef.record("c0", sent, decoded)
        lhs = delta["w"].astype(np.float64) + (
            before["w"].astype(np.float64) if before is not None else 0.0)
        rhs = decoded["w"].astype(np.float64) + \
            ef.residual("c0")["w"].astype(np.float64)
        np.testing.assert_allclose(lhs, rhs, atol=1e-6)


class TestErrorFeedback:
    def test_lossless_codec_keeps_residual_zero(self):
        ef = ErrorFeedback()
        delta = make_state(3)
        sent = ef.apply("c", delta)
        ef.record("c", sent, sent)
        assert ef.residual_norm("c") == 0.0

    def test_reset(self):
        ef = ErrorFeedback()
        ef.record("a", make_state(1), make_state(2))
        ef.record("b", make_state(1), make_state(2))
        assert len(ef) == 2 and ef.total_residual_norm() > 0
        ef.reset("a")
        assert len(ef) == 1
        ef.reset()
        assert len(ef) == 0 and ef.total_residual_norm() == 0.0

    def test_snapshot_restore_rewinds(self):
        """The sync engine rewinds residuals consumed by a discarded
        round attempt; later records must not leak into a snapshot."""
        ef = ErrorFeedback()
        ef.record("a", make_state(1), make_state(2))
        before = ef.snapshot()
        kept = {k: v.copy() for k, v in ef.residual("a").items()}
        ef.record("a", make_state(3), make_state(4))
        ef.record("b", make_state(3), make_state(4))
        ef.restore(before)
        assert len(ef) == 1
        for k, v in ef.residual("a").items():
            assert np.array_equal(v, kept[k])


class TestLinkCodecs:
    def test_uplink_codec_shrinks_wire_not_raw(self):
        state = make_state(0, shapes=((64, 32),))
        plain = Link()
        lossy = Link(uplink_codec=make_codec("int8", seed=0))
        for link in (plain, lossy):
            msg = link.send_state(state, sender="c0", receiver="agg")
            link.recv_state(msg)
        assert lossy.uplink_wire_bytes < plain.uplink_wire_bytes
        assert lossy.uplink_raw_bytes == plain.uplink_raw_bytes
        assert plain.uplink_raw_bytes == \
            state_bytes(state) + Link.METADATA_OVERHEAD

    def test_downlink_codec_only_touches_broadcast(self):
        state = make_state(0, shapes=((64, 32),))
        link = Link(downlink_codec=make_codec("fp16"))
        down = link.send_state(state, sender="agg", receiver="c0")
        up = link.send_state(state, sender="c0", receiver="agg")
        assert down.payload[:4] == Codec.MAGIC
        assert up.payload[:4] != Codec.MAGIC
        assert link.downlink_wire_bytes < link.uplink_wire_bytes

    def test_reset_counters_clears_direction_meters(self):
        link = Link()
        link.send_state(make_state(), sender="c0", receiver="agg")
        link.reset_counters()
        assert link.uplink_wire_bytes == link.uplink_raw_bytes == 0
        assert link.raw_bytes_sent == link.bytes_sent == 0


class TestFedConfigCompression:
    def test_defaults_off(self):
        fed = FedConfig()
        assert fed.compression == "none"
        assert not fed.error_feedback and not fed.compress_broadcast

    @pytest.mark.parametrize("bad", ["nope", "topk", "topk:2", "none+fp16"])
    def test_bad_spec_rejected(self, bad):
        with pytest.raises(ValueError):
            FedConfig(compression=bad)

    def test_compress_broadcast_needs_codec(self):
        with pytest.raises(ValueError):
            FedConfig(compress_broadcast=True)
        FedConfig(compression="fp16", compress_broadcast=True)

    def test_stat_utility_weight_validation(self):
        with pytest.raises(ValueError):
            FedConfig(stat_utility_weight=-1.0)

    def test_registered_stages_are_usable_through_config(self):
        """FedConfig validates against the live registry, so an
        extension stage registered at runtime works end to end."""
        from repro.compress import DEFAULT_REGISTRY, Fp16Stage

        DEFAULT_REGISTRY.register(
            "testhalf", lambda arg, seed: Fp16Stage())
        try:
            fed = FedConfig(compression="testhalf")
            assert make_codec(fed.compression) is not None
        finally:
            del DEFAULT_REGISTRY._factories["testhalf"]


class TestEngineCompression:
    def test_none_is_bit_exact_with_legacy(self):
        """The regression anchor: compression='none' (even with error
        feedback configured) reproduces the legacy run bit-exactly —
        same trace, same final parameters, same wire bytes."""
        legacy = make_photon()
        explicit = make_photon(compression="none", error_feedback=True)
        h0, h1 = legacy.train(), explicit.train()
        assert trace(h0) == trace(h1)
        assert [r.comm_bytes_up for r in h0] == [r.comm_bytes_up for r in h1]
        for k, v in legacy.aggregator.global_state.items():
            assert np.array_equal(v, explicit.aggregator.global_state[k])

    def test_lossy_uplink_records_raw_vs_wire(self):
        photon = make_photon(compression="int8", error_feedback=True)
        history = photon.train()
        record = history.records[0]
        assert record.raw_bytes_up > record.comm_bytes_up
        assert record.compression_ratio > 1.0
        result = photon.result()
        assert result.total_raw_bytes > result.total_comm_bytes
        assert result.compression_ratio > 1.0
        link = photon.aggregator.link
        assert link.uplink_raw_bytes / link.uplink_wire_bytes > 2.0
        # EF memory exists for every participating client.
        assert len(photon.aggregator.error_feedback) == 3

    @pytest.mark.slow
    def test_lossy_run_is_rerun_identical(self):
        a = make_photon(compression="int8", error_feedback=True)
        b = make_photon(compression="int8", error_feedback=True)
        assert trace(a.train()) == trace(b.train())

    def test_async_none_bit_exact(self):
        legacy = make_photon(mode="async")
        explicit = make_photon(mode="async", compression="none",
                               error_feedback=True)
        assert trace(legacy.train()) == trace(explicit.train())

    def test_sync_retry_rewinds_error_feedback(self):
        """A retried round (RAR semantics) discards its survivors'
        deltas; their EF residuals are rewound so the conservation
        invariant holds for the attempt the server actually applies."""
        from repro.fed import FailureModel

        photon = make_photon(compression="int8", error_feedback=True,
                             failure_model=FailureModel(
                                 scripted={(0, "client0")}))
        history = photon.train()
        assert history.records[0].retries == 1
        ef = photon.aggregator.error_feedback
        # Residuals reflect exactly one applied exchange per client:
        # re-running the applied attempt's conservation identity from
        # a fresh engine would diverge if the discarded attempt's
        # records had leaked through the rewind.
        assert len(ef) == 3
        assert ef.total_residual_norm() > 0

    @pytest.mark.slow
    def test_compressed_broadcast_shrinks_downlink(self):
        photon = make_photon(compression="fp16", compress_broadcast=True)
        photon.train()
        link = photon.aggregator.link
        assert link.downlink_raw_bytes / link.downlink_wire_bytes > 1.5
