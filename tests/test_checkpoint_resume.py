"""Crash-consistent checkpoint/resume: kill-at-a-server-update-boundary
followed by a resume must replay the uninterrupted run bit-exactly
under ``checkpoint_codec="none"`` — same final weights, RoundRecords
and drop ledger — for both engines, with the full fault stack active
(deadlines, requeue, jitter, utility selection, crash injection and a
lossy-uplink codec with error feedback)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.config import FedConfig, ModelConfig, OptimConfig, WallTimeConfig
from repro.fed import FailureModel, Photon

from helpers import assert_bit_exact_resume, run_crash_resume

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32,
                  seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64,
                    batch_size=2, weight_decay=0.0)
WALLTIME = WallTimeConfig(throughput=2.0, bandwidth_mbps=312.5, model_mb=0.05)


def sync_photon(rounds=3, seed=0, **overrides):
    """Partial participation + FedAdam + crash injection: every RNG
    stream the sync engine owns is live."""
    fed = FedConfig(population=3, clients_per_round=2, local_steps=2,
                    rounds=rounds, server_opt="fedadam", server_lr=0.02,
                    seed=seed, **overrides)
    return Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                  comm_topology="ps", uptime=0.9,
                  failure_model=FailureModel(crash_prob=0.1, seed=seed + 1))


def async_photon(rounds=4, seed=0, drop_policy="requeue", compression="int8",
                 **overrides):
    """The full async fault stack: deadline + requeue, seeded jitter,
    utility selection, heterogeneous clock, crash injection, lossy
    int8 uplink with error feedback, FedMom server momentum."""
    fed = FedConfig(population=4, clients_per_round=3, local_steps=2,
                    rounds=rounds, mode="async", buffer_size=2,
                    staleness_alpha=0.5, deadline=2.0,
                    drop_policy=drop_policy, selection="utility",
                    jitter=0.3, compression=compression,
                    error_feedback=compression != "none",
                    server_opt="fedmom", server_momentum=0.9, seed=seed,
                    **overrides)
    return Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                  walltime_config=WALLTIME, client_speed_spread=3.0,
                  uptime=0.9,
                  failure_model=FailureModel(crash_prob=0.1, seed=seed + 1))


class TestBitExactResume:
    def test_sync_kill_and_resume(self):
        full, resumed = run_crash_resume(
            lambda **kw: sync_photon(rounds=2, **kw), rounds=2, kill_at=1)
        assert_bit_exact_resume(full, resumed)
        assert full.result().resumed_from_round is None
        assert resumed.result().resumed_from_round == 1

    def test_async_full_fault_stack_kill_and_resume(self):
        full, resumed = run_crash_resume(
            lambda **kw: async_photon(**kw), rounds=4, kill_at=2)
        assert_bit_exact_resume(full, resumed)
        # The arm is only meaningful if the fault machinery actually
        # fired: cancelled cycles and EF residuals must exist.
        assert resumed.aggregator.drop_ledger.total_cancelled_cycles > 0
        assert len(resumed.aggregator.error_feedback) > 0

    @pytest.mark.slow
    def test_async_kill_matrix_every_boundary(self):
        """Kill at EVERY server-update boundary, for every enforcing
        drop policy — the crash-matrix sweep (nightly)."""
        for drop_policy in ("drop", "requeue", "admit_partial"):
            reference = None
            for kill_at in range(1, 4):
                full, resumed = run_crash_resume(
                    lambda **kw: async_photon(drop_policy=drop_policy, **kw),
                    rounds=4, kill_at=kill_at)
                assert_bit_exact_resume(full, resumed)
                if reference is None:
                    reference = full

    @pytest.mark.slow
    def test_async_kill_matrix_multi_seed(self):
        for seed in (1, 2, 3):
            full, resumed = run_crash_resume(
                lambda **kw: async_photon(seed=seed, **kw),
                rounds=4, kill_at=2)
            assert_bit_exact_resume(full, resumed)

    @pytest.mark.slow
    def test_sync_kill_matrix(self):
        for kill_at in (1, 2):
            full, resumed = run_crash_resume(
                lambda **kw: sync_photon(**kw), rounds=3, kill_at=kill_at)
            assert_bit_exact_resume(full, resumed)

    @pytest.mark.slow
    def test_adaptive_steps_and_admit_partial_arm(self):
        def build(**kw):
            fed = FedConfig(population=3, clients_per_round=3, local_steps=4,
                            rounds=4, mode="async", buffer_size=2,
                            deadline=30.0, drop_policy="admit_partial",
                            adaptive_local_steps=True, **kw)
            return Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2,
                          walltime_config=WALLTIME, client_speed_spread=4.0)

        full, resumed = run_crash_resume(build, rounds=4, kill_at=2)
        assert_bit_exact_resume(full, resumed)


class TestCheckpointCadenceAndCodec:
    def test_checkpoint_every_cadence(self, tmp_path):
        photon = sync_photon(checkpoint_dir=str(tmp_path), checkpoint_every=2)
        photon.train(rounds=3)
        # Boundaries 2 (and not 1 or 3) are checkpointed.
        assert photon.run_checkpointer.manager.list_checkpoints() == [2]

    @pytest.mark.slow
    def test_resume_from_quantized_checkpoint_stays_close(self):
        """FedMom velocity shipped as int8: the resumed run is no
        longer bit-exact, but the final loss stays within 2%."""
        def build(**kw):
            fed = FedConfig(population=3, clients_per_round=3, local_steps=4,
                            rounds=4, server_opt="fedmom",
                            server_momentum=0.9, **kw)
            return Photon(CFG, fed, OPTIM, num_shards=4, val_batches=2)

        full, resumed = run_crash_resume(build, rounds=4, kill_at=2,
                                         checkpoint_codec="int8")
        loss_full = np.log(full.history.val_perplexities[-1])
        loss_resumed = np.log(resumed.history.val_perplexities[-1])
        assert abs(loss_full - loss_resumed) / loss_full < 0.02

    def test_resume_without_checkpoints_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            sync_photon(checkpoint_dir=str(tmp_path), resume=True)

    @pytest.mark.slow
    def test_fully_completed_resume_is_a_no_op(self, tmp_path):
        photon = sync_photon(rounds=2, checkpoint_dir=str(tmp_path))
        photon.train()
        again = sync_photon(rounds=2, checkpoint_dir=str(tmp_path), resume=True)
        history = again.train()
        assert len(history) == 2  # nothing re-ran


class TestConfigValidation:
    def test_checkpoint_every_needs_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            FedConfig(checkpoint_every=2)

    def test_resume_needs_dir(self):
        with pytest.raises(ValueError, match="resume"):
            FedConfig(resume=True)

    def test_codec_needs_dir(self):
        with pytest.raises(ValueError, match="checkpoint_codec"):
            FedConfig(checkpoint_codec="int8")

    def test_bad_cadence_and_codec(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            FedConfig(checkpoint_dir=str(tmp_path), checkpoint_every=0)
        with pytest.raises(ValueError, match="unknown"):
            FedConfig(checkpoint_dir=str(tmp_path), checkpoint_codec="int7")


class TestCli:
    def test_resume_conflicting_dirs_is_usage_error(self, capsys, tmp_path):
        assert main(["train", "--resume", str(tmp_path / "a"),
                     "--checkpoint-dir", str(tmp_path / "b")]) == 2
        assert "resume" in capsys.readouterr().err

    def test_resume_empty_dir_is_usage_error(self, capsys, tmp_path):
        assert main(["train", "--model", "tiny", "--clients", "2",
                     "--local-steps", "1", "--rounds", "1",
                     "--batch-size", "2",
                     "--resume", str(tmp_path)]) == 2
        assert "no checkpoints" in capsys.readouterr().err

    def test_checkpoint_codec_without_dir_is_usage_error(self, capsys):
        assert main(["train", "--checkpoint-codec", "int8"]) == 2
        assert "checkpoint_codec" in capsys.readouterr().err

    @pytest.mark.slow
    def test_train_checkpoint_then_resume(self, capsys, tmp_path):
        base = ["train", "--model", "tiny", "--clients", "2",
                "--local-steps", "2", "--batch-size", "2"]
        assert main(base + ["--rounds", "1",
                            "--checkpoint-dir", str(tmp_path)]) == 0
        assert "checkpoints     :" in capsys.readouterr().out
        assert main(base + ["--rounds", "2",
                            "--resume", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "resumed         : round 1" in out
        # The resumed table shows both the restored and the new round.
        assert "\n    0  " in out and "\n    1  " in out
