"""RunState subsystem: pack/unpack round trips, per-component
``state_dict`` identity, checkpoint-codec error bounds, and the
CheckpointManager dtype/concurrency fixes (PR 5)."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import ErrorFeedback, make_codec
from repro.data import CachedTokenStream, MixedStream, SyntheticC4, TokenStream
from repro.fed import (
    AvailabilityModel,
    CheckpointManager,
    ClientScheduler,
    DropLedger,
    FailureModel,
    FedAdam,
    FedAvg,
    FedMom,
    Link,
    NesterovOuter,
    RunStateCheckpointer,
    UniformSampler,
    pack_tree,
    unpack_tree,
)
from repro.fed import runstate
from repro.fed.runstate import RUNSTATE_VERSION
from repro.net.walltime import JitterModel

from helpers import assert_states_equal


# ----------------------------------------------------------------------
# pack_tree / unpack_tree
# ----------------------------------------------------------------------

class TestPackTree:
    def test_round_trip_mixed_tree(self):
        tree = {
            "weights": {"w": np.arange(6, dtype=np.float64).reshape(2, 3)},
            "codes": np.array([1, -2, 3], dtype=np.int8),
            "payload": b"\x00\x01\xffbytes",
            "events": [[0.5, 1, "client0"], [1.25, 2, "client1"]],
            "flags": {"started": True, "steps": None, "alpha": 0.5},
            "name": "run",
        }
        arrays, structure = pack_tree(tree)
        json.dumps(structure)  # the structure must be a JSON document
        out = unpack_tree(structure, arrays)
        assert out["weights"]["w"].dtype == np.float64
        np.testing.assert_array_equal(out["weights"]["w"], tree["weights"]["w"])
        assert out["codes"].dtype == np.int8
        assert out["payload"] == tree["payload"]
        assert out["events"] == tree["events"]
        assert out["flags"] == tree["flags"]
        assert out["name"] == "run"

    def test_rng_state_survives_json(self):
        rng = np.random.default_rng(7)
        rng.random(13)
        arrays, structure = pack_tree({"rng": rng.bit_generator.state})
        restored = unpack_tree(json.loads(json.dumps(structure)), arrays)
        other = np.random.default_rng()
        other.bit_generator.state = restored["rng"]
        np.testing.assert_array_equal(rng.random(5), other.random(5))

    def test_rejects_non_string_keys_and_objects(self):
        with pytest.raises(TypeError):
            pack_tree({1: "x"})
        with pytest.raises(TypeError):
            pack_tree({"x": object()})

    @given(st.recursive(
        st.one_of(
            st.none(), st.booleans(), st.integers(-2**40, 2**40),
            st.floats(allow_nan=False), st.text(max_size=8),
            st.binary(max_size=16),
        ),
        lambda leaf: st.one_of(
            st.lists(leaf, max_size=4),
            st.dictionaries(st.text(max_size=6), leaf, max_size=4),
        ),
        max_leaves=12,
    ))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, tree):
        arrays, structure = pack_tree(tree)
        out = unpack_tree(json.loads(json.dumps(structure)), arrays)

        def normalize(node):
            if isinstance(node, tuple):
                return [normalize(v) for v in node]
            if isinstance(node, list):
                return [normalize(v) for v in node]
            if isinstance(node, dict):
                return {k: normalize(v) for k, v in node.items()}
            return node

        assert out == normalize(tree)


# ----------------------------------------------------------------------
# Component state_dict round trips: capture mid-sequence, restore into
# a freshly built twin, and require identical future behavior.
# ----------------------------------------------------------------------

class TestComponentRoundTrips:
    @given(st.integers(0, 2**31 - 1), st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_jitter_model_stream(self, seed, burn):
        model = JitterModel(0.4, seed=seed)
        for _ in range(burn):
            model.factor("c")
        twin = JitterModel(0.4, seed=seed)
        twin.load_state_dict(model.state_dict())
        assert [model.factor("c") for _ in range(8)] == \
               [twin.factor("c") for _ in range(8)]

    @given(st.integers(0, 2**31 - 1), st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_failure_model_stream(self, seed, burn):
        model = FailureModel(crash_prob=0.3, seed=seed,
                             scripted={(99, "x"), (7, "y")})
        for i in range(burn):
            model.should_fail("c", i)
        twin = FailureModel(crash_prob=0.3, seed=seed)
        twin.load_state_dict(model.state_dict())
        assert twin.scripted == model.scripted
        assert [model.should_fail("c", i) for i in range(12)] == \
               [twin.should_fail("c", i) for i in range(12)]

    @given(st.integers(0, 2**31 - 1), st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_sampler_and_availability_streams(self, seed, burn):
        population = [f"c{i}" for i in range(6)]
        sampler = UniformSampler(3, seed=seed)
        avail = AvailabilityModel(0.7, seed=seed)
        for i in range(burn):
            sampler.sample(population, i)
            avail.available(population, i)
        sampler_twin = UniformSampler(3, seed=seed)
        sampler_twin.load_state_dict(sampler.state_dict())
        avail_twin = AvailabilityModel(0.7, seed=seed)
        avail_twin.load_state_dict(avail.state_dict())
        for i in range(6):
            assert sampler.sample(population, i) == \
                sampler_twin.sample(population, i)
            assert avail.available(population, i) == \
                avail_twin.available(population, i)

    def test_scheduler_counters(self):
        scheduler = ClientScheduler("utility", deadline_s=5.0,
                                    stat_utility_weight=0.5)
        for v, cid in enumerate(["a", "b", "a", "c"]):
            scheduler.note_selected(cid, v)
            scheduler.note_result(cid, 2.0 - 0.1 * v)
        twin = ClientScheduler("utility", deadline_s=5.0,
                               stat_utility_weight=0.5)
        twin.load_state_dict(scheduler.state_dict())
        assert twin.state_dict() == scheduler.state_dict()
        ranked = scheduler._rank(["a", "b", "c"], 4, lambda c: 1.0, 5.0)
        assert twin._rank(["a", "b", "c"], 4, lambda c: 1.0, 5.0) == ranked

    def test_drop_ledger_window(self):
        ledger = DropLedger()
        ledger.record_drop(8, 1024)
        ledger.record_salvage(3, 5)
        ledger.record_late()
        twin = DropLedger()
        twin.load_state_dict(ledger.state_dict())
        assert twin.flush() == ledger.flush()
        assert twin.state_dict() == ledger.state_dict()

    def test_error_feedback_residuals(self):
        ef = ErrorFeedback()
        sent = {"w": np.array([1.0, 2.0], dtype=np.float32)}
        decoded = {"w": np.array([0.75, 2.25], dtype=np.float32)}
        ef.record("c0", sent, decoded)
        twin = ErrorFeedback()
        twin.load_state_dict(ef.state_dict())
        assert_states_equal(twin.residual("c0"), ef.residual("c0"))

    def test_link_counters_and_codec_streams(self):
        link = Link(uplink_codec=make_codec("int8", seed=3))
        state = {"w": np.linspace(-1, 1, 32, dtype=np.float32)}
        for _ in range(3):
            message = link.send_state(state, sender="c0", receiver="agg")
            link.recv_state(message)
        twin = Link(uplink_codec=make_codec("int8", seed=3))
        twin.load_state_dict(link.state_dict())
        assert twin.bytes_sent == link.bytes_sent
        assert twin.messages_sent == link.messages_sent
        # Stochastic rounding continues mid-stream: identical payloads.
        assert (twin.send_state(state, sender="c0", receiver="agg").payload
                == link.send_state(state, sender="c0", receiver="agg").payload)

    @pytest.mark.parametrize("make_opt", [
        lambda: FedAvg(lr=1.0),
        lambda: FedMom(lr=0.7, momentum=0.9),
        lambda: FedAdam(lr=0.02),
        lambda: NesterovOuter(lr=0.3, momentum=0.9),
    ])
    def test_server_opt_moments(self, make_opt, rng):
        opt, twin = make_opt(), make_opt()
        state = {"w": rng.normal(size=(4, 3)).astype(np.float32)}
        grads = [
            {"w": rng.normal(size=(4, 3)).astype(np.float32)}
            for _ in range(3)
        ]
        for g in grads[:2]:
            state = opt.step(state, g)
        twin.load_state_dict(opt.state_dict())
        assert_states_equal(opt.step(dict(state), grads[2]),
                            twin.step(dict(state), grads[2]))

    def test_stream_round_trips(self):
        c4 = SyntheticC4(num_shards=2, vocab=32, seed=5)
        cached = CachedTokenStream(c4.shard(0), 2, 16, cache_tokens=2048, seed=1)
        online = TokenStream(c4.shard(1), 2, 16, seed=2)
        mixed = MixedStream(
            [CachedTokenStream(c4.shard(s), 2, 16, cache_tokens=2048, seed=3 + s)
             for s in range(2)], seed=4)
        for stream, fresh in (
            (cached, CachedTokenStream(c4.shard(0), 2, 16, cache_tokens=2048, seed=1)),
            (online, TokenStream(c4.shard(1), 2, 16, seed=2)),
            (mixed, MixedStream(
                [CachedTokenStream(c4.shard(s), 2, 16, cache_tokens=2048, seed=3 + s)
                 for s in range(2)], seed=4)),
        ):
            for _ in range(3):
                stream.next_batch()
            fresh.load_state_dict(stream.state_dict())
            xa, ya = stream.next_batch()
            xb, yb = fresh.next_batch()
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)


# ----------------------------------------------------------------------
# RunStateCheckpointer: versioning + checkpoint-codec error bounds on
# the ServerOpt moments.
# ----------------------------------------------------------------------

def _stepped_fedadam(rng) -> FedAdam:
    opt = FedAdam(lr=0.02)
    state = {"w": rng.normal(size=(8, 4)).astype(np.float32),
             "b": rng.normal(size=(4,)).astype(np.float32)}
    for _ in range(3):
        grad = {k: rng.normal(size=v.shape).astype(np.float32)
                for k, v in state.items()}
        state = opt.step(state, grad)
    return opt


class _OptOnlyEngine:
    """Minimal engine facade: just a ServerOpt behind the checkpoint
    protocol, to exercise the codec path in isolation."""

    def __init__(self, opt):
        self.server_opt = opt

    def state_dict(self):
        return {"server_opt": self.server_opt.state_dict()}

    def load_state_dict(self, state):
        self.server_opt.load_state_dict(state["server_opt"])


class TestRunStateCheckpointer:
    @pytest.mark.parametrize("spec", ["none", "fp16", "int8", "int4",
                                      "topk:1.0", "randk:1.0"])
    def test_moment_codec_bounds(self, spec, tmp_path, rng):
        opt = _stepped_fedadam(rng)
        ckpt = RunStateCheckpointer(tmp_path, codec=spec)
        ckpt.save(_OptOnlyEngine(opt), step=1)
        twin = _OptOnlyEngine(FedAdam(lr=0.02))
        assert ckpt.restore(twin) == 1
        original, restored = opt.state_dict(), twin.server_opt.state_dict()
        assert restored["t"] == original["t"]
        # First moments travel in the linear domain; second moments in
        # the sqrt domain (what FedAdam's denominator actually uses),
        # so their codec bounds apply to sqrt(v).
        for key, value in original["m"].items():
            got = restored["m"][key]
            if spec in ("none", "topk:1.0", "randk:1.0"):
                # Full-support sparsification is a permutation:
                # lossless like the untouched path.
                np.testing.assert_array_equal(got, value)
            elif spec == "fp16":
                np.testing.assert_allclose(got, value, rtol=1.5e-3, atol=1e-7)
            else:
                levels = 127 if spec == "int8" else 7
                bound = np.abs(value).max() / levels + 1e-12
                assert np.abs(got - value).max() <= bound
        for key, value in original["v"].items():
            got = restored["v"][key]
            root, got_root = np.sqrt(value), np.sqrt(restored["v"][key])
            if spec == "none":
                np.testing.assert_array_equal(got, value)
            elif spec in ("topk:1.0", "randk:1.0"):
                # Lossless transport of sqrt(v); only the float32
                # sqrt→square round trip (≤2 eps relative) remains.
                np.testing.assert_allclose(got, value, rtol=5e-7, atol=0.0)
            elif spec == "fp16":
                np.testing.assert_allclose(got_root, root, rtol=1.6e-3,
                                           atol=1e-7)
            else:
                levels = 127 if spec == "int8" else 7
                bound = np.abs(root).max() / levels + 1e-6
                assert np.abs(got_root - root).max() <= bound

    def test_int8_sqrt_domain_bounds_the_adam_denominator(self, tmp_path):
        """The PR 5 caveat, retired: FedAdam divides by
        ``sqrt(v_hat) + eps``, and the old linear-domain int8 bound
        (proportional to ``max |v|``) let the *denominator* error
        explode for small second moments.  Quantizing in the sqrt
        domain bounds the denominator directly, across the orders of
        magnitude a real moment tree spans."""
        opt = FedAdam(lr=0.02)
        v = np.array([1e-8, 1e-6, 1e-4, 1e-2, 1.0], dtype=np.float32)
        opt._m = {"w": np.zeros(5, dtype=np.float32)}
        opt._v = {"w": v}
        opt._t = 3
        ckpt = RunStateCheckpointer(tmp_path, codec="int8")
        ckpt.save(_OptOnlyEngine(opt), step=1)
        twin = _OptOnlyEngine(FedAdam(lr=0.02))
        ckpt.restore(twin)
        got_v = twin.server_opt.state_dict()["v"]["w"]
        # sqrt-domain guarantee: |sqrt(got) - sqrt(v)| <= max sqrt(v)/127.
        denom_err = np.abs(np.sqrt(got_v) - np.sqrt(v))
        assert denom_err.max() <= np.sqrt(v).max() / 127 + 1e-7
        # The linear-domain scheme's bound was max|v|/127 ≈ 7.9e-3 on
        # v itself — a ~88x denominator error at v=1e-8.  The sqrt
        # scheme keeps every denominator within 1% of the max scale.
        assert denom_err.max() <= 0.01 * np.sqrt(v).max()

    def test_premigration_checkpoint_without_sqrt_marker_loads(self, tmp_path,
                                                               rng):
        """Artifacts written before the sqrt transform carry no marker
        and must restore unchanged (no RUNSTATE_VERSION bump)."""
        opt = _stepped_fedadam(rng)
        ckpt = RunStateCheckpointer(tmp_path, codec="fp16")
        # Re-create the old artifact layout: codec-wrap the raw tree
        # without the sqrt transform.
        tree = {"server_opt": runstate._codec_wrap(
            opt.state_dict(), ckpt.codec)}
        arrays, structure = runstate.pack_tree(tree)
        ckpt.manager.save(1, arrays, metadata={
            "runstate_version": RUNSTATE_VERSION,
            "codec": "fp16",
            "tree": structure,
        })
        twin = _OptOnlyEngine(FedAdam(lr=0.02))
        assert ckpt.restore(twin) == 1
        original = opt.state_dict()
        restored = twin.server_opt.state_dict()
        np.testing.assert_allclose(restored["v"]["w"], original["v"]["w"],
                                   rtol=1.5e-3, atol=1e-7)

    def test_sqrt_transform_skips_velocity_trees(self, tmp_path):
        """FedMom's velocity has no division — it must pass through
        the sqrt transform untouched (negative values would NaN)."""
        opt = FedMom(lr=1.0, momentum=0.9)
        opt._velocity = {"w": np.array([-2.0, -0.5, 0.0, 1.5],
                                       dtype=np.float32)}
        ckpt = RunStateCheckpointer(tmp_path, codec="topk:1.0")
        ckpt.save(_OptOnlyEngine(opt), step=1)
        twin = _OptOnlyEngine(FedMom(lr=1.0, momentum=0.9))
        ckpt.restore(twin)
        np.testing.assert_array_equal(
            twin.server_opt.state_dict()["velocity"]["w"],
            opt.state_dict()["velocity"]["w"])

    def test_fp16_representable_moments_are_bit_exact(self, tmp_path):
        opt = FedMom(lr=1.0, momentum=0.9)
        velocity = np.arange(-8, 8, dtype=np.float32) / 4.0  # exact in fp16
        opt._velocity = {"w": velocity}
        ckpt = RunStateCheckpointer(tmp_path, codec="fp16")
        ckpt.save(_OptOnlyEngine(opt), step=1)
        twin = _OptOnlyEngine(FedMom(lr=1.0, momentum=0.9))
        ckpt.restore(twin)
        np.testing.assert_array_equal(
            twin.server_opt.state_dict()["velocity"]["w"], velocity)

    def test_version_mismatch_fails_loudly(self, tmp_path, rng):
        ckpt = RunStateCheckpointer(tmp_path, codec="none")
        ckpt.save(_OptOnlyEngine(_stepped_fedadam(rng)), step=1)
        sidecar = next(tmp_path.glob("runstate_*.json"))
        meta = json.loads(sidecar.read_text())
        meta["runstate_version"] = RUNSTATE_VERSION + 1
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="runstate version"):
            ckpt.load_tree()

    def test_latest_step_and_rotation(self, tmp_path, rng):
        engine = _OptOnlyEngine(_stepped_fedadam(rng))
        ckpt = RunStateCheckpointer(tmp_path, codec="none", keep=2)
        assert ckpt.latest_step() is None
        for step in (1, 2, 3):
            ckpt.save(engine, step=step)
        assert ckpt.latest_step() == 3
        assert ckpt.manager.list_checkpoints() == [2, 3]

    def test_missing_directory_raises(self, tmp_path):
        ckpt = RunStateCheckpointer(tmp_path / "empty")
        with pytest.raises(FileNotFoundError):
            ckpt.load_tree()


# ----------------------------------------------------------------------
# CheckpointManager regressions: dtype preservation (historically
# force-cast to float32) and async-write vs prune-rotation races.
# ----------------------------------------------------------------------

class TestCheckpointManagerFixes:
    def test_save_preserves_dtypes(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        state = {
            "f64": np.array([1.0000000001], dtype=np.float64),
            "i64": np.array([2**40], dtype=np.int64),
            "u8": np.array([0, 255], dtype=np.uint8),
            "f16": np.array([0.5], dtype=np.float16),
        }
        manager.save(0, state)
        _, loaded, _ = manager.load()
        for key, value in state.items():
            assert loaded[key].dtype == value.dtype, key
            np.testing.assert_array_equal(loaded[key], value)

    def test_stale_async_write_cannot_resurrect_pruned_step(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        state = {"w": np.zeros(4, dtype=np.float32)}
        release = threading.Event()
        original_save = manager.save

        def delayed_save(step, payload, metadata=None):
            release.wait(timeout=10)
            return original_save(step, payload, metadata)

        manager.save = delayed_save
        thread = manager.save_async(1, state)
        manager.save = original_save
        # Rotation moves past step 1 while its write is still pending.
        for step in (5, 6, 7):
            manager.save(step, state)
        release.set()
        thread.join(timeout=10)
        manager.wait()
        assert manager.list_checkpoints() == [6, 7]

    def test_concurrent_save_async_all_joined_and_bounded(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        state = {"w": np.zeros(64, dtype=np.float32)}
        threads = []
        barrier = threading.Barrier(8)

        def spawn(step):
            barrier.wait(timeout=10)
            threads.append(manager.save_async(step, state))

        workers = [threading.Thread(target=spawn, args=(i,)) for i in range(8)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=10)
        manager.wait()
        assert all(not t.is_alive() for t in threads)
        checkpoints = manager.list_checkpoints()
        assert len(checkpoints) <= 3
        assert checkpoints, "rotation deleted every checkpoint"
