"""Hardware modelling, strategy selection, and DDP/FSDP equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, PAPER_MODELS
from repro.data import CachedTokenStream, SyntheticC4
from repro.nn import DecoderLM
from repro.optim import SGD, AdamW
from repro.parallel import (
    A100_40GB,
    H100,
    DDPEngine,
    FSDPEngine,
    GPUSpec,
    NodeSpec,
    ShardLayout,
    SiloSpec,
    calc_batch_size,
    select_strategy,
)


class TestHardware:
    def test_gpu_vram_bytes(self):
        assert H100.vram_bytes == 80 * 2**30

    def test_node_requires_gpus(self):
        with pytest.raises(ValueError):
            NodeSpec(())

    def test_silo_requires_nodes(self):
        with pytest.raises(ValueError):
            SiloSpec("empty", ())

    def test_single_node_has_rdma(self):
        silo = SiloSpec.multi_gpu(4)
        assert silo.has_rdma

    def test_multi_node_rdma_threshold(self):
        fast = SiloSpec("fast", (NodeSpec((H100,)), NodeSpec((H100,))),
                        inter_bw_gbps=200.0)
        slow = SiloSpec("slow", (NodeSpec((H100,)), NodeSpec((H100,))),
                        inter_bw_gbps=10.0)
        assert fast.has_rdma
        assert not slow.has_rdma

    def test_gpu_counts(self):
        silo = SiloSpec("s", (NodeSpec((H100, H100)), NodeSpec((H100,))))
        assert silo.n_gpus == 3
        assert silo.n_nodes == 2


class TestCalcBatchSize:
    def test_125m_fits_h100_with_large_batch(self):
        cfg = PAPER_MODELS["125M"]
        batch = calc_batch_size(cfg.n_params, cfg.d_model, cfg.n_blocks,
                                cfg.seq_len, H100.vram_bytes)
        # Paper: Bl = 32 on one H100 for the 125M model; the packing
        # heuristic should allow at least that.
        assert batch >= 32

    def test_7b_does_not_fit_single_h100(self):
        cfg = PAPER_MODELS["7B"]
        batch = calc_batch_size(cfg.n_params, cfg.d_model, cfg.n_blocks,
                                cfg.seq_len, H100.vram_bytes)
        assert batch == 0  # needs sharding / multiple GPUs (Table 1: 8xH100)

    def test_batch_is_power_of_two(self):
        cfg = PAPER_MODELS["125M"]
        batch = calc_batch_size(cfg.n_params, cfg.d_model, cfg.n_blocks,
                                cfg.seq_len, H100.vram_bytes)
        assert batch & (batch - 1) == 0

    def test_monotone_in_vram(self):
        cfg = PAPER_MODELS["350M"]
        small = calc_batch_size(cfg.n_params, cfg.d_model, cfg.n_blocks,
                                cfg.seq_len, A100_40GB.vram_bytes)
        large = calc_batch_size(cfg.n_params, cfg.d_model, cfg.n_blocks,
                                cfg.seq_len, H100.vram_bytes)
        assert large >= small


class TestStrategySelection:
    def test_single_gpu(self):
        plan = select_strategy(SiloSpec.single_gpu(), PAPER_MODELS["125M"])
        assert plan.strategy == "single_gpu"
        assert plan.n_workers == 1

    def test_multi_gpu_ddp_when_model_fits(self):
        plan = select_strategy(SiloSpec.multi_gpu(4), PAPER_MODELS["125M"])
        assert plan.strategy == "ddp"
        assert plan.n_workers == 4

    def test_multi_gpu_fsdp_when_model_too_big(self):
        plan = select_strategy(SiloSpec.multi_gpu(8), PAPER_MODELS["7B"])
        assert plan.strategy == "fsdp"
        assert plan.n_workers == 8

    def test_multi_node_slow_links_sub_federates(self):
        silo = SiloSpec("campus", (NodeSpec((H100,)), NodeSpec((H100,))),
                        inter_bw_gbps=1.0)
        plan = select_strategy(silo, PAPER_MODELS["125M"])
        assert plan.strategy == "sub_federation"
        assert plan.n_workers == 2

    def test_multi_node_fast_links_use_ddp(self):
        silo = SiloSpec("dc", (NodeSpec((H100,)), NodeSpec((H100,))),
                        inter_bw_gbps=400.0)
        plan = select_strategy(silo, PAPER_MODELS["125M"])
        assert plan.strategy == "ddp"

    def test_target_batch_caps_plan(self):
        plan = select_strategy(SiloSpec.single_gpu(), PAPER_MODELS["125M"],
                               target_batch=8)
        assert plan.per_worker_batch == 8

    def test_model_too_big_raises(self):
        tiny_gpu = GPUSpec("toy", vram_gb=0.001, bf16_tflops=1.0)
        silo = SiloSpec("toy", (NodeSpec((tiny_gpu,)),))
        with pytest.raises(ValueError):
            select_strategy(silo, PAPER_MODELS["7B"])

    def test_client_batch_product(self):
        plan = select_strategy(SiloSpec.multi_gpu(4), PAPER_MODELS["125M"],
                               target_batch=8)
        assert plan.client_batch == 32


def _train_setup(seed=0, batch=8):
    cfg = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2,
                      vocab_size=32, seq_len=16)
    model = DecoderLM(cfg, seed=seed)
    c4 = SyntheticC4(num_shards=1, vocab=cfg.vocab_size, seed=1)
    stream = CachedTokenStream(c4.shard(0), batch_size=batch, seq_len=cfg.seq_len,
                               cache_tokens=2048, seed=2)
    return cfg, model, stream


class TestDDPEquivalence:
    def test_ddp_matches_single_worker_full_batch(self):
        """The defining DDP property: k-way gradient averaging over
        shards == one step on the full batch."""
        _, model_a, stream = _train_setup(seed=0)
        _, model_b, _ = _train_setup(seed=0)
        x, y = stream.next_batch()

        opt_a = SGD(model_a.parameters(), lr=0.1)
        single = DDPEngine(model_a, opt_a, n_workers=1, grad_clip=None)
        loss_a = single.step(x, y)

        opt_b = SGD(model_b.parameters(), lr=0.1)
        ddp = DDPEngine(model_b, opt_b, n_workers=4, grad_clip=None)
        loss_b = ddp.step(x, y)

        np.testing.assert_allclose(loss_a, loss_b, rtol=1e-4)
        for (_, pa), (_, pb) in zip(model_a.named_parameters(),
                                    model_b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-3, atol=1e-5)

    def test_indivisible_batch_rejected(self):
        _, model, stream = _train_setup(batch=6)
        engine = DDPEngine(model, SGD(model.parameters(), lr=0.1), n_workers=4)
        x, y = stream.next_batch()
        with pytest.raises(ValueError):
            engine.step(x, y)

    def test_comm_events_counted(self):
        _, model, stream = _train_setup()
        engine = DDPEngine(model, SGD(model.parameters(), lr=0.1), n_workers=2)
        for _ in range(3):
            x, y = stream.next_batch()
            engine.step(x, y)
        assert engine.comm_events == 3

    def test_invalid_worker_count(self):
        _, model, _ = _train_setup()
        with pytest.raises(ValueError):
            DDPEngine(model, SGD(model.parameters(), lr=0.1), n_workers=0)


class TestShardLayout:
    def test_partition_exact(self):
        layout = ShardLayout(10, 3)
        sizes = layout.shard_sizes()
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_slices_disjoint_and_cover(self):
        layout = ShardLayout(17, 4)
        seen = np.zeros(17, dtype=int)
        for w in range(4):
            seen[layout.slice_for(w)] += 1
        assert (seen == 1).all()

    def test_out_of_range_worker(self):
        with pytest.raises(IndexError):
            ShardLayout(10, 2).slice_for(2)

    def test_allgather_bytes_positive(self):
        layout = ShardLayout(100, 4)
        assert layout.allgather_bytes() == 2 * (100 - 25)


class TestFSDP:
    def test_fsdp_matches_ddp(self):
        _, model_a, stream = _train_setup(seed=0)
        _, model_b, _ = _train_setup(seed=0)
        x, y = stream.next_batch()

        ddp = DDPEngine(model_a, SGD(model_a.parameters(), lr=0.1),
                        n_workers=2, grad_clip=None)
        ddp.step(x, y)

        fsdp = FSDPEngine(model_b, SGD(model_b.parameters(), lr=0.1),
                          n_workers=2, grad_clip=None)
        fsdp.step(x, y)

        state_a = model_a.state_dict()
        state_b = fsdp.full_state()
        for k in state_a:
            np.testing.assert_allclose(state_a[k], state_b[k], rtol=1e-4, atol=1e-6)

    def test_worker_memory_fraction(self):
        _, model, _ = _train_setup()
        fsdp = FSDPEngine(model, SGD(model.parameters(), lr=0.1), n_workers=4)
        total = sum(fsdp.worker_param_count(w) for w in range(4))
        assert total == fsdp.layout.total_params
        assert fsdp.worker_param_count(0) <= total // 4 + 1

    def test_gather_bytes_accumulate(self):
        _, model, stream = _train_setup()
        fsdp = FSDPEngine(model, AdamW(model.parameters(), lr=1e-3), n_workers=2)
        x, y = stream.next_batch()
        fsdp.step(x, y)
        assert fsdp.bytes_gathered > 0
