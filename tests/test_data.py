"""Tokenizers, synthetic corpora, shards and streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DEFAULT_ALPHABET,
    CachedTokenStream,
    CharTokenizer,
    MarkovSource,
    MixedStream,
    SyntheticC4,
    SyntheticPile,
    TokenStream,
    WordTokenizer,
    assign_shards,
    kernel_divergence,
    make_source,
    mixed_kernel,
    partition_stream,
    shards_per_client,
)
from repro.data.synthetic import PILE_SOURCE_NAMES


class TestCharTokenizer:
    def test_roundtrip(self):
        tok = CharTokenizer()
        text = "hello world, this is photon.\n"
        np.testing.assert_array_equal(tok.encode(text).shape, (len(text),))
        assert tok.decode(tok.encode(text)) == text

    def test_unknown_maps_to_unk(self):
        tok = CharTokenizer()
        ids = tok.encode("a!b")
        assert ids[1] == CharTokenizer.UNK

    def test_pad_skipped_in_decode(self):
        tok = CharTokenizer()
        ids = np.array([tok.PAD, *tok.encode("ab"), tok.PAD])
        assert tok.decode(ids) == "ab"

    def test_vocab_size(self):
        tok = CharTokenizer()
        assert tok.vocab_size == len(DEFAULT_ALPHABET) + 2

    def test_duplicate_alphabet_rejected(self):
        with pytest.raises(ValueError):
            CharTokenizer("aab")

    @given(st.text(alphabet=DEFAULT_ALPHABET, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, text):
        tok = CharTokenizer()
        assert tok.decode(tok.encode(text)) == text


class TestWordTokenizer:
    def test_fit_and_encode(self):
        tok = WordTokenizer(max_vocab=10).fit("the cat sat on the mat the end")
        ids = tok.encode("the cat")
        assert ids.shape == (2,)
        assert (ids >= 2).all()

    def test_unknown_word(self):
        tok = WordTokenizer(max_vocab=4).fit("a a b b c")
        assert tok.encode("zebra")[0] == WordTokenizer.UNK

    def test_encode_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            WordTokenizer().encode("hi")

    def test_vocab_capped(self):
        corpus = " ".join(f"w{i}" for i in range(100))
        tok = WordTokenizer(max_vocab=10).fit(corpus)
        assert tok.vocab_size == 10


class TestMarkovSource:
    def test_kernel_rows_stochastic(self):
        source = make_source("c4", vocab=32)
        np.testing.assert_allclose(source.kernel.sum(axis=1), np.ones(32), atol=1e-8)

    def test_samples_in_range_and_no_specials(self):
        source = make_source("c4", vocab=32)
        tokens = source.sample_tokens(500)
        assert tokens.min() >= 2
        assert tokens.max() < 32

    def test_seeded_reproducibility(self):
        a = MarkovSource(make_source("c4", vocab=32).kernel, seed=5)
        b = MarkovSource(make_source("c4", vocab=32).kernel, seed=5)
        np.testing.assert_array_equal(a.sample_tokens(100), b.sample_tokens(100))

    def test_different_seeds_differ(self):
        kernel = make_source("c4", vocab=32).kernel
        a = MarkovSource(kernel, seed=1).sample_tokens(200)
        b = MarkovSource(kernel, seed=2).sample_tokens(200)
        assert not np.array_equal(a, b)

    def test_entropy_rate_bounds(self):
        source = make_source("c4", vocab=32)
        h = source.entropy_rate()
        assert 0.0 < h < np.log(32)
        assert source.optimal_perplexity() == pytest.approx(np.exp(h))

    def test_empirical_bigrams_match_kernel(self):
        """Sampled transition frequencies converge to the kernel."""
        source = make_source("c4", vocab=16)
        tokens = source.sample_tokens(40_000)
        counts = np.zeros((16, 16))
        np.add.at(counts, (tokens[:-1], tokens[1:]), 1.0)
        rows = counts.sum(axis=1, keepdims=True)
        mask = rows[:, 0] > 500
        empirical = counts[mask] / rows[mask]
        np.testing.assert_allclose(empirical, source.kernel[mask], atol=0.05)

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError):
            MarkovSource(np.ones((3, 3)), seed=0)
        with pytest.raises(ValueError):
            MarkovSource(np.ones((2, 3)) / 3, seed=0)


class TestKernelMixing:
    def test_zero_heterogeneity_is_base(self):
        a = make_source("arxiv", vocab=32, heterogeneity=0.0)
        b = make_source("gutenberg", vocab=32, heterogeneity=0.0)
        np.testing.assert_allclose(a.kernel, b.kernel)

    def test_full_heterogeneity_distinct(self):
        a = make_source("arxiv", vocab=32, heterogeneity=1.0)
        b = make_source("gutenberg", vocab=32, heterogeneity=1.0)
        assert kernel_divergence(a.kernel, b.kernel) > 0.3

    def test_divergence_monotone_in_heterogeneity(self):
        divs = []
        for h in (0.0, 0.5, 1.0):
            a = make_source("arxiv", vocab=32, heterogeneity=h)
            b = make_source("wikipedia", vocab=32, heterogeneity=h)
            divs.append(kernel_divergence(a.kernel, b.kernel))
        assert divs[0] < divs[1] < divs[2]

    def test_mixed_kernel_stays_stochastic(self):
        a = make_source("arxiv", vocab=16).kernel
        b = make_source("c4", vocab=16).kernel
        mix = mixed_kernel(a, b, 0.3)
        np.testing.assert_allclose(mix.sum(axis=1), np.ones(16), atol=1e-8)

    def test_invalid_heterogeneity(self):
        a = make_source("arxiv", vocab=16).kernel
        with pytest.raises(ValueError):
            mixed_kernel(a, a, 1.5)


class TestSyntheticC4:
    def test_shards_share_distribution(self):
        c4 = SyntheticC4(num_shards=4, vocab=32)
        np.testing.assert_allclose(c4.shard(0).kernel, c4.shard(3).kernel)

    def test_shards_have_distinct_streams(self):
        c4 = SyntheticC4(num_shards=4, vocab=32)
        a = c4.shard(0).sample_tokens(100)
        b = c4.shard(1).sample_tokens(100)
        assert not np.array_equal(a, b)

    def test_shard_bounds(self):
        c4 = SyntheticC4(num_shards=4, vocab=32)
        with pytest.raises(IndexError):
            c4.shard(4)

    def test_validation_distinct_from_shards(self):
        c4 = SyntheticC4(num_shards=2, vocab=32)
        val = c4.validation().sample_tokens(100)
        train = c4.shard(0).sample_tokens(100)
        assert not np.array_equal(val, train)


class TestSyntheticPile:
    def test_client_source_counts(self):
        pile = SyntheticPile(vocab=32)
        for n in (4, 8, 16):
            assert len(pile.client_sources(n)) == n

    def test_invalid_client_count(self):
        with pytest.raises(ValueError):
            SyntheticPile(vocab=32).client_sources(6)

    def test_four_clients_get_distinct_sources(self):
        pile = SyntheticPile(vocab=32)
        clients = pile.client_sources(4)
        for i in range(4):
            for j in range(i + 1, 4):
                assert kernel_divergence(clients[i].kernel, clients[j].kernel) > 0.1

    def test_split_clients_share_source_kernel(self):
        pile = SyntheticPile(vocab=32)
        clients = pile.client_sources(8)
        # Clients 0,1 both hold the first source.
        np.testing.assert_allclose(clients[0].kernel, clients[1].kernel)

    def test_source_names(self):
        assert set(PILE_SOURCE_NAMES) == {"arxiv", "c4", "wikipedia", "gutenberg"}


class TestStreams:
    def test_token_stream_batch_shapes(self):
        source = make_source("c4", vocab=32)
        stream = TokenStream(source, batch_size=3, seq_len=10)
        x, y = stream.next_batch()
        assert x.shape == (3, 10) and y.shape == (3, 10)
        np.testing.assert_array_equal(x[:, 1:], y[:, :-1])

    def test_cached_stream_shapes_and_shift(self):
        source = make_source("c4", vocab=32)
        stream = CachedTokenStream(source, batch_size=4, seq_len=8,
                                   cache_tokens=1024, seed=0)
        x, y = stream.next_batch()
        assert x.shape == (4, 8)
        np.testing.assert_array_equal(x[:, 1:], y[:, :-1])

    def test_cached_stream_deterministic(self):
        source = make_source("c4", vocab=32)
        a = CachedTokenStream(source, 2, 8, cache_tokens=512, seed=1)
        b = CachedTokenStream(source, 2, 8, cache_tokens=512, seed=1)
        np.testing.assert_array_equal(a.next_batch()[0], b.next_batch()[0])

    def test_cache_too_small_rejected(self):
        source = make_source("c4", vocab=32)
        with pytest.raises(ValueError):
            CachedTokenStream(source, 2, 100, cache_tokens=150)

    def test_tokens_served_accounting(self):
        source = make_source("c4", vocab=32)
        stream = CachedTokenStream(source, 2, 8, cache_tokens=512)
        stream.next_batch()
        stream.next_batch()
        assert stream.tokens_served == 2 * 2 * 8

    def test_mixed_stream_geometry_checked(self):
        source = make_source("c4", vocab=32)
        a = CachedTokenStream(source, 2, 8, cache_tokens=512)
        b = CachedTokenStream(source, 2, 16, cache_tokens=512)
        with pytest.raises(ValueError):
            MixedStream([a, b])

    def test_mixed_stream_weights(self):
        arxiv = make_source("arxiv", vocab=32)
        c4 = make_source("c4", vocab=32)
        a = CachedTokenStream(arxiv, 4, 8, cache_tokens=512, seed=0)
        b = CachedTokenStream(c4, 4, 8, cache_tokens=512, seed=1)
        mixed = MixedStream([a, b], weights=[1.0, 0.0], seed=0)
        x, _ = mixed.next_batch()
        assert x.shape == (4, 8)

    def test_mixed_stream_invalid_weights(self):
        source = make_source("c4", vocab=32)
        a = CachedTokenStream(source, 2, 8, cache_tokens=512)
        with pytest.raises(ValueError):
            MixedStream([a], weights=[-1.0])

    def test_partition_stream(self):
        source = make_source("c4", vocab=32)
        parts = partition_stream(source, 3, batch_size=2, seq_len=8, seed=0)
        assert len(parts) == 3
        batches = [p.next_batch()[0] for p in parts]
        assert not np.array_equal(batches[0], batches[1])


class TestSharding:
    def test_one_shard_per_client(self):
        groups = assign_shards(64, 16, seed=0)
        assert len(groups) == 16
        flat = [s for g in groups for s in g]
        assert len(flat) == len(set(flat))
        assert all(len(g) == 4 for g in groups)

    def test_paper_setup_n_clients_n_shards(self):
        groups = assign_shards(64, 64)
        assert all(len(g) == 1 for g in groups)

    def test_too_many_clients_rejected(self):
        with pytest.raises(ValueError):
            assign_shards(4, 8)

    def test_shards_per_client(self):
        assert shards_per_client(64, 16) == 4
        assert shards_per_client(64, 64) == 1

    def test_deterministic_given_seed(self):
        assert assign_shards(16, 4, seed=3) == assign_shards(16, 4, seed=3)
