"""Cross-cutting property-based invariants (hypothesis).

These complement the per-module tests with properties that must hold
for *any* input in the domain: causality of the decoder, descent
directions, aggregation linearity, wall-time monotonicity, payload
error bounds, and partition exactness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ModelConfig, WallTimeConfig
from repro.data import CharTokenizer, make_source
from repro.data.stream import CachedTokenStream
from repro.fed import (
    DropLedger,
    FedAvg,
    PolynomialStaleness,
    adaptive_step_weights,
    ties_merge,
)
from repro.net import WallTimeModel
from repro.nn import DecoderLM
from repro.optim import WarmupCosine
from repro.parallel import ShardLayout
from repro.tensor import no_grad
from repro.utils import (
    decode_state,
    encode_state,
    state_to_vector,
    tree_mean,
    tree_scale,
)

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32, seq_len=16)
_MODEL = DecoderLM(CFG, seed=0)


class TestDecoderProperties:
    @given(st.integers(0, 13), st.integers(2, 31))
    @settings(max_examples=15, deadline=None)
    def test_causality_full_model(self, position, replacement):
        """Changing token at position p never affects logits before p."""
        rng = np.random.default_rng(position * 131 + replacement)
        tokens = rng.integers(2, CFG.vocab_size, size=(1, 15))
        with no_grad():
            base = _MODEL(tokens).data.copy()
        mutated = tokens.copy()
        mutated[0, position] = replacement
        with no_grad():
            changed = _MODEL(mutated).data
        np.testing.assert_allclose(base[0, :position], changed[0, :position],
                                   atol=1e-4)

    @given(st.integers(1, 4), st.integers(2, 15))
    @settings(max_examples=10, deadline=None)
    def test_batch_independence(self, batch, seq):
        """Each row's logits equal the single-row forward."""
        rng = np.random.default_rng(batch * 7 + seq)
        tokens = rng.integers(2, CFG.vocab_size, size=(batch, seq))
        with no_grad():
            joint = _MODEL(tokens).data
            solo = _MODEL(tokens[:1]).data
        np.testing.assert_allclose(joint[0], solo[0], atol=1e-4)

    def test_gradient_is_descent_direction(self):
        """A small step along -grad reduces the loss."""
        model = DecoderLM(CFG, seed=1)
        rng = np.random.default_rng(0)
        tokens = rng.integers(2, CFG.vocab_size, size=(4, 15))
        x, y = tokens[:, :-1], tokens[:, 1:]
        loss = model.loss(x, y)
        model.zero_grad()
        loss.backward()
        before = float(loss.data)
        for p in model.parameters():
            if p.grad is not None:
                p.data -= 1e-3 * p.grad
        after = float(model.loss(x, y).data)
        assert after < before


class TestAggregationProperties:
    def _states(self, seed, n=3):
        rng = np.random.default_rng(seed)
        return [{"a": rng.normal(size=(4, 2)).astype(np.float32),
                 "b": rng.normal(size=3).astype(np.float32)} for _ in range(n)]

    @given(st.floats(0.1, 5.0), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_mean_is_homogeneous(self, alpha, seed):
        states = self._states(seed)
        scaled_mean = tree_mean([tree_scale(s, alpha) for s in states])
        mean_scaled = tree_scale(tree_mean(states), alpha)
        for k in scaled_mean:
            np.testing.assert_allclose(scaled_mean[k], mean_scaled[k],
                                       rtol=1e-4, atol=1e-5)

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_fedavg_fixed_point(self, seed):
        """Zero pseudo-gradient leaves the global model unchanged."""
        state = self._states(seed, n=1)[0]
        zero = tree_scale(state, 0.0)
        out = FedAvg(lr=1.0).step(state, zero)
        for k in state:
            np.testing.assert_array_equal(out[k], state[k])

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_ties_single_client_full_density_identity(self, seed):
        state = self._states(seed, n=1)[0]
        merged = ties_merge([state], density=1.0)
        np.testing.assert_allclose(state_to_vector(merged),
                                   state_to_vector(state), rtol=1e-5)

    @given(st.integers(2, 6), st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_ties_identical_clients_identity(self, n, seed):
        state = self._states(seed, n=1)[0]
        merged = ties_merge([state] * n, density=1.0)
        np.testing.assert_allclose(state_to_vector(merged),
                                   state_to_vector(state), rtol=1e-4,
                                   atol=1e-5)


class TestWallTimeProperties:
    @given(st.integers(2, 64), st.floats(10.0, 1000.0))
    @settings(max_examples=25, deadline=None)
    def test_ps_monotone_in_clients(self, clients, bandwidth):
        model = WallTimeModel(WallTimeConfig(throughput=1.0,
                                             bandwidth_mbps=bandwidth,
                                             model_mb=50.0))
        assert model.comm_s("ps", clients + 1) > model.comm_s("ps", clients)

    @given(st.integers(2, 64))
    @settings(max_examples=25, deadline=None)
    def test_comm_decreasing_in_bandwidth(self, clients):
        slow = WallTimeModel(WallTimeConfig(1.0, 10.0, 50.0))
        fast = WallTimeModel(WallTimeConfig(1.0, 100.0, 50.0))
        for topo in ("ps", "ar", "rar"):
            assert fast.comm_s(topo, clients) < slow.comm_s(topo, clients)

    @given(st.integers(2, 64), st.integers(1, 512))
    @settings(max_examples=25, deadline=None)
    def test_round_time_additivity(self, clients, steps):
        model = WallTimeModel(WallTimeConfig(2.0, 100.0, 50.0))
        timing = model.round_timing("rar", clients, steps)
        assert timing.total_s == pytest.approx(timing.compute_s + timing.comm_s)


class TestPayloadProperties:
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_lossless_roundtrip_any_shape(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        state = {"w": rng.normal(size=(rows, cols)).astype(np.float32)}
        back = decode_state(encode_state(state))
        np.testing.assert_array_equal(back["w"], state["w"])

    @given(st.integers(0, 1000), st.floats(0.1, 100.0))
    @settings(max_examples=20, deadline=None)
    def test_quantization_error_bound(self, seed, scale):
        rng = np.random.default_rng(seed)
        state = {"w": (scale * rng.normal(size=64)).astype(np.float32)}
        back = decode_state(encode_state(state, quantize_int8=True))
        bound = np.abs(state["w"]).max() / 127.0
        assert np.abs(back["w"] - state["w"]).max() <= bound * 0.51


class TestFaultToleranceProperties:
    @given(st.floats(0.0, 5.0), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_staleness_weight_monotone_in_staleness(self, alpha, s):
        """More staleness never weighs more: w(s+1) <= w(s) <= 1."""
        w = PolynomialStaleness(alpha)
        assert 0.0 < w(s) <= 1.0
        assert w(s + 1) <= w(s)

    @given(st.lists(st.integers(1, 512), min_size=1, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_adaptive_step_weights_sum_to_one(self, steps):
        """Steps-proportional weights are a probability vector, ordered
        like the step counts."""
        weights = adaptive_step_weights(steps)
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)
        order = sorted(range(len(steps)), key=lambda i: steps[i])
        assert all(
            weights[order[i]] <= weights[order[i + 1]] + 1e-12
            for i in range(len(order) - 1)
        )

    @given(st.lists(
        st.one_of(
            st.tuples(st.just("drop"), st.integers(0, 100), st.integers(0, 10_000)),
            st.tuples(st.just("late"), st.just(0), st.just(0)),
            st.tuples(st.just("flush"), st.just(0), st.just(0)),
        ),
        max_size=40,
    ))
    @settings(max_examples=50, deadline=None)
    def test_drop_ledger_conserves_accounting(self, ops):
        """Any interleaving of drops, late admits and flushes
        partitions exactly into windows: window sums (plus the open
        window) always equal the cumulative totals."""
        ledger = DropLedger()
        windows = []
        for op, steps, nbytes in ops:
            if op == "drop":
                ledger.record_drop(steps, nbytes)
            elif op == "late":
                ledger.record_late()
            else:
                windows.append(ledger.flush())
        windows.append(ledger.flush())  # close the open window
        assert sum(w["dropped_steps"] for w in windows) == ledger.total_dropped_steps
        assert sum(w["dropped_bytes"] for w in windows) == ledger.total_dropped_bytes
        assert (sum(w["deadline_misses"] for w in windows)
                == ledger.total_deadline_misses)


class TestScheduleProperties:
    @given(st.floats(1e-5, 1.0), st.integers(1, 50), st.integers(60, 500),
           st.integers(0, 600))
    @settings(max_examples=30, deadline=None)
    def test_lr_bounded_by_max(self, max_lr, warmup, total, step):
        sched = WarmupCosine(max_lr, warmup, total, alpha=0.1)
        lr = sched(step)
        assert 0.0 < lr <= max_lr * (1 + 1e-9)
        assert lr >= 0.1 * max_lr * (1 - 1e-6) or step < warmup


class TestDataProperties:
    @given(st.integers(1, 6), st.integers(2, 20), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_stream_tokens_valid(self, batch, seq, seed):
        source = make_source("c4", vocab=32)
        stream = CachedTokenStream(source, batch_size=batch, seq_len=seq,
                                   cache_tokens=2048, seed=seed)
        x, y = stream.next_batch()
        for arr in (x, y):
            assert arr.min() >= 2
            assert arr.max() < 32

    @given(st.text(alphabet="abc .,\n", max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_tokenizer_never_crashes(self, text):
        tok = CharTokenizer()
        assert tok.decode(tok.encode(text)) == text


class TestShardProperties:
    @given(st.integers(1, 200), st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_layout_partitions_exactly(self, total, workers):
        layout = ShardLayout(total, workers)
        covered = np.zeros(total, dtype=int)
        for w in range(workers):
            covered[layout.slice_for(w)] += 1
        assert (covered == 1).all()
