"""Extension features: contribution tracking, power-of-choice,
proximal clients, comm overlap, int8 codec, parallel aggregation,
hyperopt, repetition source, cross-perplexity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FedConfig, ModelConfig, OptimConfig, WallTimeConfig
from repro.data import CachedTokenStream, SyntheticC4, make_source
from repro.data.synthetic import (
    RepetitionSource,
    cross_perplexity,
    make_kernel,
    stationary_distribution,
)
from repro.fed import (
    Aggregator,
    Candidate,
    ContributionTracker,
    LLMClient,
    Link,
    Photon,
    PowerOfChoiceSampler,
    cosine_alignment,
    successive_halving,
)
from repro.fed.types import RoundInfo
from repro.net.walltime import RoundTiming, WallTimeModel
from repro.nn import DecoderLM
from repro.optim import ConstantLR
from repro.utils import decode_state, encode_state, state_to_vector

CFG = ModelConfig("micro", n_blocks=1, d_model=16, n_heads=2, vocab_size=32, seq_len=16)
OPTIM = OptimConfig(max_lr=3e-3, warmup_steps=2, schedule_steps=64, batch_size=4,
                    weight_decay=0.0)


def make_stream(shard=0, seed=0):
    c4 = SyntheticC4(num_shards=4, vocab=CFG.vocab_size, seed=1)
    return CachedTokenStream(c4.shard(shard), batch_size=4, seq_len=CFG.seq_len,
                             cache_tokens=2048, seed=seed)


class TestCosineAlignment:
    def test_identical_updates_align(self, rng):
        u = {"w": rng.normal(size=8).astype(np.float32)}
        assert cosine_alignment(u, u) == pytest.approx(1.0, abs=1e-5)

    def test_opposite_updates_anti_align(self, rng):
        u = {"w": rng.normal(size=8).astype(np.float32)}
        neg = {"w": -u["w"]}
        assert cosine_alignment(u, neg) == pytest.approx(-1.0, abs=1e-5)

    def test_zero_update_is_zero(self):
        z = {"w": np.zeros(4, dtype=np.float32)}
        assert cosine_alignment(z, z) == 0.0


class TestContributionTracker:
    def test_aligned_client_scores_higher(self, rng):
        tracker = ContributionTracker()
        aggregate = {"w": np.ones(8, dtype=np.float32)}
        updates = {
            "aligned": {"w": np.ones(8, dtype=np.float32)},
            "orthogonal": {"w": np.array([1, -1] * 4, dtype=np.float32)},
        }
        scores = tracker.record_round(updates, aggregate)
        assert scores["aligned"] > scores["orthogonal"]

    def test_ranking_order(self, rng):
        tracker = ContributionTracker(decay=0.5)
        aggregate = {"w": np.ones(4, dtype=np.float32)}
        for _ in range(3):
            tracker.record_round(
                {"good": {"w": np.ones(4, dtype=np.float32)},
                 "bad": {"w": np.full(4, -1.0, dtype=np.float32)}},
                aggregate,
            )
        ranking = tracker.ranking()
        assert ranking[0][0] == "good"
        assert tracker.rounds_seen["good"] == 3

    def test_empty_round_rejected(self):
        with pytest.raises(ValueError):
            ContributionTracker().record_round({}, {"w": np.ones(1)})

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            ContributionTracker(decay=0.0)


class TestPowerOfChoice:
    POP = [f"c{i}" for i in range(8)]

    def test_selects_k(self):
        sampler = PowerOfChoiceSampler(k=2, candidates=4, seed=0)
        assert len(sampler.sample(self.POP, 0)) == 2

    def test_prefers_high_loss_clients(self):
        sampler = PowerOfChoiceSampler(k=1, candidates=8, seed=0)
        sampler.update_losses({c: 0.1 for c in self.POP})
        sampler.update_losses({"c3": 9.9})
        assert sampler.sample(self.POP, 0) == ["c3"]

    def test_unknown_losses_explored_first(self):
        sampler = PowerOfChoiceSampler(k=1, candidates=8, seed=0)
        sampler.update_losses({c: 1.0 for c in self.POP if c != "c5"})
        assert sampler.sample(self.POP, 0) == ["c5"]

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerOfChoiceSampler(k=3, candidates=2)
        with pytest.raises(ValueError):
            PowerOfChoiceSampler(k=1, candidates=1).sample([], 0)


class TestProximalClient:
    def test_large_mu_pins_client_to_global(self):
        global_state = DecoderLM(CFG, seed=7).state_dict()
        info = RoundInfo(0, 4, 0)

        free = LLMClient("free", CFG, make_stream(), OPTIM, ConstantLR(3e-3))
        pinned = LLMClient("pinned", CFG, make_stream(), OPTIM, ConstantLR(3e-3),
                           proximal_mu=100.0)
        free_update = free.train(global_state, info)
        pinned_update = pinned.train(global_state, info)

        free_norm = np.linalg.norm(state_to_vector(free_update.delta))
        pinned_norm = np.linalg.norm(state_to_vector(pinned_update.delta))
        assert pinned_norm < free_norm

    def test_zero_mu_is_default_behaviour(self):
        global_state = DecoderLM(CFG, seed=7).state_dict()
        info = RoundInfo(0, 2, 0)
        a = LLMClient("a", CFG, make_stream(seed=5), OPTIM, ConstantLR(3e-3))
        b = LLMClient("b", CFG, make_stream(seed=5), OPTIM, ConstantLR(3e-3),
                      proximal_mu=0.0)
        ua = a.train(global_state, info)
        ub = b.train(global_state, info)
        np.testing.assert_allclose(state_to_vector(ua.delta),
                                   state_to_vector(ub.delta), atol=1e-6)

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            LLMClient("x", CFG, make_stream(), OPTIM, ConstantLR(3e-3),
                      proximal_mu=-1.0)


class TestOverlapTiming:
    def test_overlap_takes_max(self):
        timing = RoundTiming(compute_s=10.0, comm_s=4.0, overlapped=True)
        assert timing.total_s == 10.0
        plain = RoundTiming(compute_s=10.0, comm_s=4.0)
        assert plain.total_s == 14.0

    def test_model_overlap_flag(self):
        wt = WallTimeModel(WallTimeConfig(throughput=1.0, bandwidth_mbps=10.0,
                                          model_mb=100.0))
        plain = wt.round_timing("ps", 4, 10)
        overlapped = wt.round_timing("ps", 4, 10, overlap=True)
        assert overlapped.total_s < plain.total_s
        assert overlapped.total_s == max(plain.compute_s, plain.comm_s)


class TestInt8Codec:
    def test_roundtrip_error_bounded(self, rng):
        state = {"w": rng.normal(size=(32, 16)).astype(np.float32)}
        back = decode_state(encode_state(state, quantize_int8=True))
        scale = np.abs(state["w"]).max() / 127.0
        assert np.abs(back["w"] - state["w"]).max() <= scale * 0.51

    def test_payload_shrinks(self, rng):
        state = {"w": rng.normal(size=(64, 64)).astype(np.float32)}
        full = encode_state(state, compress=False)
        quantized = encode_state(state, compress=False, quantize_int8=True)
        assert len(quantized) < len(full) / 2.5

    def test_zero_tensor_roundtrip(self):
        state = {"w": np.zeros(16, dtype=np.float32)}
        back = decode_state(encode_state(state, quantize_int8=True))
        np.testing.assert_array_equal(back["w"], state["w"])

    def test_uncompressed_quantized_magic(self, rng):
        state = {"w": rng.normal(size=4).astype(np.float32)}
        payload = encode_state(state, compress=False, quantize_int8=True)
        assert payload[:4] == b"Q8R0"
        decode_state(payload)

    def test_link_quantized_mode(self, rng):
        link = Link(quantize_int8=True)
        state = {"w": rng.normal(size=(16, 16)).astype(np.float32)}
        message = link.send_state(state, "a", "b")
        received, _ = link.recv_state(message)
        assert np.abs(received["w"] - state["w"]).max() < 0.1


class TestParallelAggregation:
    def make_aggregator(self, max_workers):
        clients = {
            f"c{i}": LLMClient(f"c{i}", CFG, make_stream(shard=i, seed=i),
                               OPTIM, ConstantLR(3e-3))
            for i in range(3)
        }
        c4 = SyntheticC4(num_shards=4, vocab=CFG.vocab_size, seed=1)
        val = CachedTokenStream(c4.validation(), batch_size=4, seq_len=CFG.seq_len,
                                cache_tokens=2048, seed=99)
        return Aggregator(CFG, clients, val_stream=val, max_workers=max_workers)

    def test_parallel_matches_sequential(self):
        seq = self.make_aggregator(max_workers=1)
        par = self.make_aggregator(max_workers=3)
        seq.run_round(0, 2)
        par.run_round(0, 2)
        np.testing.assert_allclose(
            state_to_vector(seq.global_state),
            state_to_vector(par.global_state), rtol=1e-5, atol=1e-6,
        )

    def test_parallel_byte_accounting_exact(self):
        seq = self.make_aggregator(max_workers=1)
        par = self.make_aggregator(max_workers=3)
        r_seq = seq.run_round(0, 1)
        r_par = par.run_round(0, 1)
        assert r_seq.comm_bytes_down == r_par.comm_bytes_down
        assert r_seq.comm_bytes_up == r_par.comm_bytes_up

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            self.make_aggregator(max_workers=0)


class TestHyperopt:
    @pytest.mark.slow
    def test_successive_halving_converges_to_one(self):
        fed = FedConfig(population=2, clients_per_round=2, local_steps=2, rounds=4)
        candidates = [Candidate(max_lr=3e-3), Candidate(max_lr=1e-6),
                      Candidate(max_lr=1e-3), Candidate(max_lr=3e-7)]
        results = successive_halving(CFG, fed, OPTIM, candidates,
                                     initial_rounds=1)
        assert results[0].best_perplexity <= results[-1].best_perplexity
        # The tiny LRs cannot win against a working one.
        assert results[0].candidate.max_lr >= 1e-3

    @pytest.mark.slow
    def test_single_candidate_short_circuit(self):
        fed = FedConfig(population=1, clients_per_round=1, local_steps=2, rounds=2)
        results = successive_halving(CFG, fed, OPTIM, [Candidate(max_lr=3e-3)],
                                     initial_rounds=1)
        assert len(results) == 1

    def test_validation(self):
        fed = FedConfig(population=1, clients_per_round=1, local_steps=1, rounds=1)
        with pytest.raises(ValueError):
            successive_halving(CFG, fed, OPTIM, [])
        with pytest.raises(ValueError):
            successive_halving(CFG, fed, OPTIM,
                               [Candidate(1e-3), Candidate(1e-3)])


class TestRepetitionSource:
    def test_spans_repeat(self):
        base = make_source("c4", vocab=32)
        rep = RepetitionSource(base, span=5, seed=0)
        tokens = rep.sample_tokens(200, rng=np.random.default_rng(1))
        # With repeat_prob=1 every 10-token block is span+copy.
        blocks = tokens[: (tokens.size // 10) * 10].reshape(-1, 10)
        matches = (blocks[:, :5] == blocks[:, 5:]).all(axis=1)
        assert matches.mean() > 0.9

    def test_length_exact(self):
        base = make_source("c4", vocab=32)
        rep = RepetitionSource(base, span=7, seed=0)
        assert rep.sample_tokens(123).size == 123

    def test_zero_repeat_prob_is_plain_markov(self):
        base = make_source("c4", vocab=32)
        rep = RepetitionSource(base, span=5, repeat_prob=0.0, seed=0)
        tokens = rep.sample_tokens(100, rng=np.random.default_rng(1))
        blocks = tokens[:100].reshape(-1, 10)
        matches = (blocks[:, :5] == blocks[:, 5:]).all(axis=1)
        assert matches.mean() < 0.5

    def test_validation(self):
        base = make_source("c4", vocab=32)
        with pytest.raises(ValueError):
            RepetitionSource(base, span=0)
        with pytest.raises(ValueError):
            RepetitionSource(base, span=4, repeat_prob=2.0)


class TestCrossPerplexity:
    def test_self_cross_is_optimal(self):
        source = make_source("c4", vocab=32)
        self_ppl = cross_perplexity(source.kernel, source.kernel)
        assert self_ppl == pytest.approx(source.optimal_perplexity(), rel=0.02)

    def test_mismatched_predictor_is_worse(self):
        a = make_source("c4", vocab=32)
        b = make_source("gutenberg", vocab=32)
        mix = 0.5 * a.kernel + 0.5 * b.kernel
        assert cross_perplexity(a.kernel, mix) > a.optimal_perplexity()

    def test_stationary_distribution_valid(self):
        kernel = make_kernel(seed=0, vocab=16, successors=4, concentration=0.5)
        pi = stationary_distribution(kernel)
        assert pi.sum() == pytest.approx(1.0)
        assert (pi[:2] == 0).all()
        # Stationarity: pi K = pi.
        np.testing.assert_allclose(pi @ kernel, pi, atol=1e-6)


class TestHardTasks:
    def test_hard_bigram_examples_plausible(self):
        from repro.eval import HardBigramTask

        source = make_source("c4", vocab=32)
        task = HardBigramTask(source, seed=0)
        for _ in range(10):
            ex = task.make_example()
            row = source.kernel[int(ex.prompt[-1])]
            assert row[ex.correct] >= row[ex.distractor] > 0

    def test_markov_copy_distractor_is_bigram_plausible(self):
        from repro.eval import MarkovCopyTask

        source = make_source("c4", vocab=32)
        task = MarkovCopyTask(source, seed=0, span=6)
        for _ in range(10):
            ex = task.make_example()
            row = source.kernel[int(ex.prompt[-1])]
            assert row[ex.distractor] > 0
            assert ex.correct != ex.distractor

    def test_markov_copy_span_validation(self):
        from repro.eval import MarkovCopyTask

        with pytest.raises(ValueError):
            MarkovCopyTask(make_source("c4", vocab=32), span=2)


class TestPhotonWithExtensions:
    @pytest.mark.slow
    def test_quantized_link_still_converges(self):
        photon = Photon(
            CFG,
            FedConfig(population=2, clients_per_round=2, local_steps=8, rounds=3),
            OPTIM,
        )
        photon.aggregator.link = Link(quantize_int8=True)
        history = photon.train()
        assert history.val_perplexities[-1] < history.val_perplexities[0]
